// Package runtime is DUET's heterogeneous execution engine (§IV-D). One
// worker per device consumes subgraphs from its synchronization queue,
// executes their compiled kernels, and triggers dependents; values crossing
// devices pay the interconnect cost. Time advances on the virtual clock of
// the device models while tensor values are (optionally) computed for real,
// so co-executed results can be checked bit-for-bit against single-device
// execution.
package runtime

import (
	"fmt"

	"duet/internal/compiler"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/ops"
	"duet/internal/partition"
	"duet/internal/tensor"
	"duet/internal/vclock"
	"duet/internal/verify"
)

// syncQueueOverhead models one push+pop through the shared-memory
// synchronization queue between the scheduler and a device worker.
const syncQueueOverhead vclock.Seconds = 2e-6

// SyncQueueOverhead exports the per-dispatch queue overhead for analytic
// cost models that mirror the engine (schedule's predicted-cost search).
const SyncQueueOverhead = syncQueueOverhead

// Placement maps each flat subgraph index (partition.Subgraphs() order) to
// the device kind that executes it.
type Placement []device.Kind

// Clone returns a copy of the placement.
func (p Placement) Clone() Placement {
	return append(Placement(nil), p...)
}

// String renders the placement compactly, e.g. "CGGC". Unknown device kinds
// render as '?' so corrupted placements are visible in logs instead of
// silently reading as GPU.
func (p Placement) String() string {
	b := make([]byte, len(p))
	for i, k := range p {
		switch k {
		case device.CPU:
			b[i] = 'C'
		case device.GPU:
			b[i] = 'G'
		default:
			b[i] = '?'
		}
	}
	return string(b)
}

// validatePlacement delegates to the static verification layer's placement
// pass, so every engine entry point fails a corrupted placement with a typed
// *verify.PlacementError naming the subgraph, phase, and offending device —
// instead of an index panic deep in the engine.
func (e *Engine) validatePlacement(place Placement) error {
	if e.Partition == nil {
		return verify.CheckPlacementN([]device.Kind(place), len(e.subgraphs))
	}
	return verify.CheckPlacement([]device.Kind(place), e.Partition)
}

// Uniform returns a placement assigning every one of n subgraphs to kind.
func Uniform(n int, kind device.Kind) Placement {
	p := make(Placement, n)
	for i := range p {
		p[i] = kind
	}
	return p
}

// Span records one executed subgraph or transfer on the timeline.
type Span struct {
	Label  string
	Device string
	Start  vclock.Seconds
	End    vclock.Seconds
}

// Result is the outcome of one engine run.
type Result struct {
	// Outputs holds the declared graph outputs (nil when values were not
	// materialised).
	Outputs []*tensor.Tensor
	// Latency is the virtual end-to-end time of the run.
	Latency vclock.Seconds
	// Timeline lists executed subgraphs and transfers in start order.
	Timeline []Span
	// Faults summarises fault-tolerance activity (non-nil only for
	// RunWithPolicy runs).
	Faults *FaultReport
}

// Engine executes a partitioned model on the coupled CPU-GPU platform.
type Engine struct {
	Parent    *graph.Graph
	Partition *partition.Partition
	Platform  *device.Platform

	subgraphs []*graph.Subgraph
	modules   []*compiler.Module
	// tuned holds per-subgraph, per-device-kind kernel costs after
	// low-level schedule selection (the target-dependent back-end step).
	tuned [][2][]ops.Cost
	// m holds the resolved observability instruments (all nil until
	// Instrument attaches a registry; recording through nil is a no-op).
	m engineMetrics
	// arena recycles activation buffers across value-carrying runs. Created
	// by New; SetArena(nil) reverts to plain allocation (the pre-arena
	// baseline, useful for allocation A/B measurements).
	arena *tensor.Arena
}

// New compiles every subgraph of the partition under opt and returns an
// engine ready to execute placements.
func New(p *partition.Partition, plat *device.Platform, opt compiler.Options) (*Engine, error) {
	e := &Engine{Parent: p.Parent, Partition: p, Platform: plat, subgraphs: p.Subgraphs(), arena: tensor.NewArena()}
	for _, sub := range e.subgraphs {
		m, err := compiler.Compile(sub.Graph, opt)
		if err != nil {
			return nil, fmt.Errorf("runtime: compiling subgraph %s: %w", sub.Graph.Name, err)
		}
		e.modules = append(e.modules, m)
		e.tuned = append(e.tuned, [2][]ops.Cost{
			device.CPU: compiler.TunedCosts(m, plat.CPU),
			device.GPU: compiler.TunedCosts(m, plat.GPU),
		})
	}
	return e, nil
}

// KernelCosts returns subgraph i's kernel costs as lowered for the given
// device kind.
func (e *Engine) KernelCosts(i int, kind device.Kind) []ops.Cost {
	return e.tuned[i][kind]
}

// NumSubgraphs returns the number of schedulable subgraphs.
func (e *Engine) NumSubgraphs() int { return len(e.subgraphs) }

// Subgraphs exposes the flat subgraph list (partition order).
func (e *Engine) Subgraphs() []*graph.Subgraph { return e.subgraphs }

// Module returns the compiled module of subgraph i.
func (e *Engine) Module(i int) *compiler.Module { return e.modules[i] }

// SetArena replaces the engine's activation arena. Pass nil to disable
// buffer recycling and execute with plain allocation.
func (e *Engine) SetArena(ar *tensor.Arena) { e.arena = ar }

// Arena returns the engine's activation arena (nil when disabled).
func (e *Engine) Arena() *tensor.Arena { return e.arena }

// Run executes the model under the given placement. inputs are keyed by the
// parent graph's input names; pass withValues=false for timing-only runs
// (inputs may then be nil).
func (e *Engine) Run(inputs map[string]*tensor.Tensor, place Placement, withValues bool) (*Result, error) {
	res, err := e.run(inputs, place, withValues)
	if err != nil {
		e.m.runErrors.Inc()
		return res, err
	}
	e.m.runs.Inc()
	e.m.latency.Observe(res.Latency)
	e.m.recordMemory(e.arena)
	return res, nil
}

func (e *Engine) run(inputs map[string]*tensor.Tensor, place Placement, withValues bool) (*Result, error) {
	if err := e.validatePlacement(place); err != nil {
		return nil, err
	}

	// Host-resident runtime inputs: available on CPU at t=0, on GPU after a
	// transfer. readyAt[id][kind] is when the value of parent node id is
	// usable on that device; -1 marks "not yet there".
	type avail [2]vclock.Seconds
	ready := make(map[graph.NodeID]*avail, e.Parent.Len())
	producedOn := make(map[graph.NodeID]device.Kind)
	markReady := func(id graph.NodeID, kind device.Kind, t vclock.Seconds) {
		a, ok := ready[id]
		if !ok {
			a = &avail{-1, -1}
			ready[id] = a
		}
		a[kind] = t
	}
	for _, id := range e.Parent.InputIDs() {
		markReady(id, device.CPU, 0)
		producedOn[id] = device.CPU
	}

	var values map[graph.NodeID]*tensor.Tensor
	var boundaryUses map[graph.NodeID]int
	if withValues {
		values = make(map[graph.NodeID]*tensor.Tensor)
		for _, id := range e.Parent.InputIDs() {
			n := e.Parent.Node(id)
			v, ok := inputs[n.Name]
			if !ok {
				return nil, fmt.Errorf("runtime: missing input %q", n.Name)
			}
			if !tensor.ShapeEq(v.Shape(), n.Shape) {
				return nil, fmt.Errorf("runtime: input %q has shape %v, want %v", n.Name, v.Shape(), n.Shape)
			}
			values[id] = v
		}
		if e.arena != nil {
			boundaryUses = e.boundaryUses()
		}
	}

	res := &Result{}
	deviceFree := [2]vclock.Seconds{0, 0}
	link := e.Platform.Link

	// ensureOn returns when value id becomes usable on kind, scheduling a
	// transfer if it lives on the other device only.
	ensureOn := func(id graph.NodeID, kind device.Kind) (vclock.Seconds, error) {
		a, ok := ready[id]
		if !ok {
			return 0, fmt.Errorf("runtime: value of node %q consumed before production", e.Parent.Node(id).Name)
		}
		if a[kind] >= 0 {
			return a[kind], nil
		}
		other := device.CPU
		if kind == device.CPU {
			other = device.GPU
		}
		if a[other] < 0 {
			return 0, fmt.Errorf("runtime: value of node %q unavailable on both devices", e.Parent.Node(id).Name)
		}
		bytes := e.Parent.DataSize(id)
		dur := link.SampleTransferTime(bytes)
		start := a[other]
		end := start + dur
		a[kind] = end
		e.m.linkBusy.Add(dur)
		res.Timeline = append(res.Timeline, Span{
			Label:  fmt.Sprintf("xfer:%s→%s:%s", other, kind, e.Parent.Node(id).Name),
			Device: link.Name,
			Start:  start,
			End:    end,
		})
		return end, nil
	}

	// Execute subgraphs in partition order; a device runs its assigned
	// subgraphs serially (footnote 2: sequential execution per device).
	for i, sub := range e.subgraphs {
		kind := place[i]
		dev := e.Platform.Device(kind)
		start := deviceFree[kind]
		for _, pid := range sub.BoundaryInputs {
			t, err := ensureOn(pid, kind)
			if err != nil {
				return nil, err
			}
			if t > start {
				start = t
			}
		}
		start += syncQueueOverhead

		dur := vclock.Seconds(0)
		for _, c := range e.tuned[i][kind] {
			dur += dev.SampleKernelTime(c)
		}
		end := start + dur
		deviceFree[kind] = end
		e.m.deviceBusy[kind].Add(dur)
		res.Timeline = append(res.Timeline, Span{
			Label:  sub.Graph.Name + " [" + sub.Summary() + "]",
			Device: dev.Name,
			Start:  start,
			End:    end,
		})
		for _, pid := range sub.Outputs {
			markReady(pid, kind, end)
			producedOn[pid] = kind
		}

		if withValues {
			subIn := make(map[string]*tensor.Tensor, len(sub.BoundaryInputs))
			for _, pid := range sub.BoundaryInputs {
				subIn["in."+e.Parent.Node(pid).Name] = values[pid]
			}
			outs, err := e.modules[i].ExecuteArena(subIn, e.arena)
			if err != nil {
				return nil, fmt.Errorf("runtime: executing %s: %w", sub.Graph.Name, err)
			}
			for oi, pid := range sub.Outputs {
				values[pid] = outs[oi]
			}
			e.releaseConsumed(sub.BoundaryInputs, boundaryUses, values)
		}
	}

	// The result is consumed on the host: outputs produced on the GPU pay a
	// final transfer back.
	finish := vclock.Seconds(0)
	for _, o := range e.Parent.Outputs() {
		t, err := ensureOn(o, device.CPU)
		if err != nil {
			return nil, err
		}
		if t > finish {
			finish = t
		}
	}
	res.Latency = finish
	if withValues {
		for _, o := range e.Parent.Outputs() {
			res.Outputs = append(res.Outputs, values[o])
		}
	}
	return res, nil
}

// boundaryUses counts, per parent node, how many subgraphs consume its value
// as a boundary input — the engine-level analogue of the module executor's
// release plan. Parent inputs and declared outputs get a sentinel use so
// they always survive the run (they belong to the caller).
func (e *Engine) boundaryUses() map[graph.NodeID]int {
	uses := make(map[graph.NodeID]int, e.Parent.Len())
	for _, sub := range e.subgraphs {
		for _, pid := range sub.BoundaryInputs {
			uses[pid]++
		}
	}
	for _, id := range e.Parent.InputIDs() {
		uses[id]++
	}
	for _, o := range e.Parent.Outputs() {
		uses[o]++
	}
	return uses
}

// releaseConsumed returns cross-subgraph intermediate values to the arena
// once their last consuming subgraph has executed. A value still referenced
// by an aliasing view elsewhere in values (a subgraph whose output is a
// reshape of its input shares storage with it) is left to the garbage
// collector instead. No-op when the arena is disabled or bookkeeping was
// not requested.
func (e *Engine) releaseConsumed(consumed []graph.NodeID, uses map[graph.NodeID]int, values map[graph.NodeID]*tensor.Tensor) {
	if e.arena == nil || uses == nil {
		return
	}
	for _, pid := range consumed {
		uses[pid]--
		if uses[pid] != 0 {
			continue
		}
		v := values[pid]
		if v == nil || len(v.Data()) == 0 {
			continue
		}
		shared := false
		for oid, o := range values {
			if oid != pid && o != nil && len(o.Data()) > 0 && &o.Data()[0] == &v.Data()[0] {
				shared = true
				break
			}
		}
		if !shared {
			e.arena.Release(v)
			delete(values, pid)
		}
	}
}

// MeasureLatency performs runs timing-only executions and returns every
// sample — the engine-level analogue of the paper's 5000-run measurement.
func (e *Engine) MeasureLatency(place Placement, runs int) ([]vclock.Seconds, error) {
	samples := make([]vclock.Seconds, 0, runs)
	for r := 0; r < runs; r++ {
		res, err := e.Run(nil, place, false)
		if err != nil {
			return nil, err
		}
		samples = append(samples, res.Latency)
	}
	return samples, nil
}
