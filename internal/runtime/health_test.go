package runtime

import (
	"testing"

	"duet/internal/device"
	"duet/internal/obs"
)

// TestBreakerFailureWhileOpen: failures arriving while the breaker is
// already open (a straggler attempt reporting back late) must not extend
// the probation window or count as fresh trips.
func TestBreakerFailureWhileOpen(t *testing.T) {
	h := NewHealthTracker(2, 10)
	h.Failure(device.GPU, 0)
	if !h.Failure(device.GPU, 1) {
		t.Fatal("breaker did not trip at threshold")
	}
	// A late failure inside the open window is absorbed silently.
	if h.Failure(device.GPU, 5) {
		t.Fatal("failure while open re-tripped")
	}
	if h.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", h.Trips())
	}
	// The probation window still expires at the original trip time + 10.
	if !h.Available(device.GPU, 11) {
		t.Fatal("probation was extended by the late failure")
	}
}

// TestBreakerBackToBackTrips: consecutive probe failures each re-open the
// breaker for a fresh probation window, and every re-open counts as a trip
// and a transition.
func TestBreakerBackToBackTrips(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHealthTracker(1, 10)
	h.Instrument(reg)

	now := 0.0
	for round := 0; round < 3; round++ {
		if !h.Failure(device.GPU, now) {
			t.Fatalf("round %d: failure did not (re)trip", round)
		}
		if h.Available(device.GPU, now+9) {
			t.Fatalf("round %d: open breaker admitted inside probation", round)
		}
		now += 10
		if !h.Available(device.GPU, now) {
			t.Fatalf("round %d: probation expiry did not admit a probe", round)
		}
	}
	if h.Trips() != 3 {
		t.Fatalf("trips = %d, want 3", h.Trips())
	}
	s := reg.Snapshot()
	if got := s.Counters[`duet_breaker_transitions_total{device="gpu",to="open"}`]; got != 3 {
		t.Fatalf("open transitions = %d, want 3", got)
	}
	if got := s.Counters[`duet_breaker_transitions_total{device="gpu",to="half-open"}`]; got != 3 {
		t.Fatalf("half-open transitions = %d, want 3", got)
	}
	if got := s.Counters["duet_readmissions_total"]; got != 0 {
		t.Fatalf("readmissions = %d, want 0 (every probe failed)", got)
	}
	// Finally a probe succeeds: readmission, gauge back to closed.
	h.Success(device.GPU)
	if h.Readmissions() != 1 {
		t.Fatalf("readmissions = %d, want 1", h.Readmissions())
	}
	if g := reg.Snapshot().Gauges[`duet_breaker_state{device="gpu"}`]; g != 0 {
		t.Fatalf("state gauge = %g, want 0 (closed)", g)
	}
}

// TestBreakerSuccessResetsStreak: a success between failures resets the
// consecutive counter, so sub-threshold failure bursts never trip.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	h := NewHealthTracker(3, 10)
	for i := 0; i < 10; i++ {
		if h.Failure(device.CPU, float64(i)) || h.Failure(device.CPU, float64(i)) {
			t.Fatalf("burst %d tripped below threshold", i)
		}
		h.Success(device.CPU)
	}
	if h.Trips() != 0 {
		t.Fatalf("trips = %d, want 0", h.Trips())
	}
}

// TestBreakerHalfOpenAdmitsUntilVerdict: a half-open breaker stays available
// to further callers until the probe's verdict lands — the breaker gates
// scheduling, it does not serialize callers.
func TestBreakerHalfOpenAdmitsUntilVerdict(t *testing.T) {
	h := NewHealthTracker(1, 10)
	h.Failure(device.GPU, 0)
	if !h.Available(device.GPU, 10) || !h.Available(device.GPU, 10.1) {
		t.Fatal("half-open breaker refused a second caller before the verdict")
	}
	if code, name := h.SlotState(int(device.GPU)); code != 2 || name != "half-open" {
		t.Fatalf("SlotState = (%d, %q), want (2, half-open)", code, name)
	}
	// The probe's failure closes the admission again.
	h.Failure(device.GPU, 10.2)
	if h.Available(device.GPU, 10.3) {
		t.Fatal("re-opened breaker admitted a caller")
	}
}

// TestHealthTrackerNSlots: the N-slot form (one slot per serving node) trips
// and recovers each slot independently, exactly like the device form.
func TestHealthTrackerNSlots(t *testing.T) {
	h := NewHealthTrackerN(5, 2, 10)
	if h.Slots() != 5 {
		t.Fatalf("Slots() = %d, want 5", h.Slots())
	}
	for slot := 0; slot < 5; slot++ {
		if !h.SlotAvailable(slot, 0) {
			t.Fatalf("fresh slot %d unavailable", slot)
		}
	}
	h.SlotFailure(3, 0)
	if !h.SlotFailure(3, 1) {
		t.Fatal("slot 3 did not trip at threshold")
	}
	for slot := 0; slot < 5; slot++ {
		want := slot != 3
		if got := h.SlotAvailable(slot, 2); got != want {
			t.Fatalf("SlotAvailable(%d) = %v, want %v", slot, got, want)
		}
	}
	if code, _ := h.SlotState(3); code != 1 {
		t.Fatalf("slot 3 state = %d, want 1 (open)", code)
	}
	// Probe on slot 3 after probation, success re-admits; others untouched.
	if !h.SlotAvailable(3, 12) {
		t.Fatal("slot 3 probation expiry did not admit")
	}
	h.SlotSuccess(3)
	if code, _ := h.SlotState(3); code != 0 {
		t.Fatalf("slot 3 state after readmission = %d, want 0", code)
	}
	if h.Trips() != 1 || h.Readmissions() != 1 {
		t.Fatalf("trips=%d readmits=%d, want 1/1", h.Trips(), h.Readmissions())
	}
}

// TestHealthTrackerNilAndZeroSlotSafety: nil trackers and disabled
// thresholds answer through the slot API without panicking.
func TestHealthTrackerNilAndZeroSlotSafety(t *testing.T) {
	var h *HealthTracker
	if !h.SlotAvailable(7, 0) || h.SlotFailure(7, 0) || h.Slots() != 0 {
		t.Fatal("nil tracker misbehaved")
	}
	h.SlotSuccess(7)
	if code, name := h.SlotState(7); code != 0 || name != "closed" {
		t.Fatalf("nil SlotState = (%d, %q)", code, name)
	}
	d := NewHealthTrackerN(0, 3, 1) // clamped to one slot
	if d.Slots() != 1 {
		t.Fatalf("clamped Slots() = %d, want 1", d.Slots())
	}
}
