package runtime

import (
	"testing"

	"duet/internal/device"
)

func TestPipelinedThroughputExceedsInverseLatency(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	place := Placement{device.CPU, device.GPU, device.CPU}
	single, err := e.Run(nil, place, false)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := e.MeasurePipelined(place, 50)
	if err != nil {
		t.Fatal(err)
	}
	// With pipelining, throughput must be at least the serial rate (and
	// strictly better when phases overlap across requests).
	serialRate := 1 / single.Latency
	if pipe.Throughput < serialRate*0.99 {
		t.Fatalf("pipelined throughput %v below serial rate %v", pipe.Throughput, serialRate)
	}
	if pipe.Requests != 50 || pipe.Makespan <= 0 {
		t.Fatalf("bad result: %+v", pipe)
	}
	// Mean latency includes queueing, so it can only exceed the single-run
	// latency.
	if pipe.MeanLatency < single.Latency*0.99 {
		t.Fatalf("pipelined mean latency %v below single-run latency %v", pipe.MeanLatency, single.Latency)
	}
}

func TestPipelinedSingleRequestMatchesRun(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	place := Uniform(e.NumSubgraphs(), device.GPU)
	single, err := e.Run(nil, place, false)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := e.MeasurePipelined(place, 1)
	if err != nil {
		t.Fatal(err)
	}
	rel := pipe.Makespan / single.Latency
	if rel < 0.99 || rel > 1.01 {
		t.Fatalf("single-request pipeline %v != Run %v", pipe.Makespan, single.Latency)
	}
}

func TestPipelinedHeterogeneousBeatsUniformThroughput(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	split := Placement{device.CPU, device.GPU, device.CPU}
	duet, err := e.MeasurePipelined(split, 100)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := e.MeasurePipelined(Uniform(3, device.GPU), 100)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := e.MeasurePipelined(Uniform(3, device.CPU), 100)
	if err != nil {
		t.Fatal(err)
	}
	if duet.Throughput <= gpu.Throughput || duet.Throughput <= cpu.Throughput {
		t.Fatalf("co-execution should raise pipelined throughput: duet=%v gpu=%v cpu=%v",
			duet.Throughput, gpu.Throughput, cpu.Throughput)
	}
}

func TestPipelinedErrors(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	if _, err := e.MeasurePipelined(Placement{device.CPU}, 10); err == nil {
		t.Fatalf("expected placement-length error")
	}
	// An out-of-range device kind must fail validation, not panic inside
	// Platform.Device.
	if _, err := e.MeasurePipelined(Placement{device.CPU, device.Kind(7), device.GPU}, 10); err == nil {
		t.Fatalf("expected unknown-device-kind error")
	}
	// requests < 1 clamps to 1.
	r, err := e.MeasurePipelined(Uniform(3, device.CPU), 0)
	if err != nil || r.Requests != 1 {
		t.Fatalf("clamp failed: %+v, %v", r, err)
	}
}
