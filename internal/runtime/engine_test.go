package runtime

import (
	"strings"
	"testing"

	"duet/internal/compiler"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/partition"
	"duet/internal/tensor"
	"duet/internal/vclock"
)

// branchy builds two independent dense branches joined by a concat head.
func branchy(t *testing.T) (*partition.Partition, map[string]*tensor.Tensor) {
	t.Helper()
	// Branches sized so compute (hundreds of µs) dominates PCIe transfers
	// (tens of µs); otherwise co-execution could never overlap.
	g := graph.New("branchy")
	xa := g.AddInput("xa", 1, 1024)
	xb := g.AddInput("xb", 1, 1024)
	wa := g.AddConst("wa", tensor.Full(0.001, 1024, 1024))
	wb := g.AddConst("wb", tensor.Full(0.002, 1024, 1024))
	a1 := g.Add("dense", "a1", nil, xa, wa)
	a2 := g.Add("relu", "a2", nil, a1)
	b1 := g.Add("dense", "b1", nil, xb, wb)
	b2 := g.Add("sigmoid", "b2", nil, b1)
	cat := g.Add("concat", "cat", graph.Attrs{"axis": 1}, a2, b2)
	g.SetOutputs(cat)
	if err := compiler.InferShapes(g); err != nil {
		t.Fatal(err)
	}
	p, err := partition.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*tensor.Tensor{
		"xa": tensor.Full(0.5, 1, 1024),
		"xb": tensor.Full(-0.5, 1, 1024),
	}
	return p, inputs
}

func newEngine(t *testing.T, p *partition.Partition, seed int64) *Engine {
	t.Helper()
	e, err := New(p, device.NewPlatform(seed), compiler.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRunAllCPUMatchesWholeGraph(t *testing.T) {
	p, inputs := branchy(t)
	e := newEngine(t, p, 0)
	whole, err := compiler.Compile(p.Parent, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := whole.Execute(inputs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(inputs, Uniform(e.NumSubgraphs(), device.CPU), true)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(res.Outputs[0], want[0], 1e-5, 1e-5) {
		t.Fatalf("all-CPU run diverges from whole graph: %g", tensor.MaxAbsDiff(res.Outputs[0], want[0]))
	}
}

func TestRunOutputsIdenticalAcrossPlacements(t *testing.T) {
	p, inputs := branchy(t)
	e := newEngine(t, p, 0)
	n := e.NumSubgraphs()
	var ref *tensor.Tensor
	for mask := 0; mask < 1<<n; mask++ {
		place := make(Placement, n)
		for i := range place {
			if mask&(1<<i) != 0 {
				place[i] = device.GPU
			}
		}
		res, err := e.Run(inputs, place, true)
		if err != nil {
			t.Fatalf("placement %s: %v", place, err)
		}
		if ref == nil {
			ref = res.Outputs[0]
			continue
		}
		if !tensor.AllClose(res.Outputs[0], ref, 0, 0) {
			t.Fatalf("placement %s changed numerical result", place)
		}
	}
}

func TestRunLatencyPositiveAndFinite(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Uniform(e.NumSubgraphs(), device.GPU), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 || res.Latency > 1 {
		t.Fatalf("implausible latency %v", res.Latency)
	}
	if res.Outputs != nil {
		t.Fatalf("timing-only run should not materialise outputs")
	}
}

func TestCrossDevicePlacementPaysTransfers(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	n := e.NumSubgraphs()
	allCPU, err := e.Run(nil, Uniform(n, device.CPU), false)
	if err != nil {
		t.Fatal(err)
	}
	// Head on GPU, branches on CPU: two boundary values must cross.
	mixed := Uniform(n, device.CPU)
	mixed[n-1] = device.GPU
	res, err := e.Run(nil, mixed, false)
	if err != nil {
		t.Fatal(err)
	}
	var xfers int
	for _, s := range res.Timeline {
		if strings.HasPrefix(s.Label, "xfer:") {
			xfers++
		}
	}
	if xfers < 2 {
		t.Fatalf("expected ≥2 transfers, timeline: %+v", res.Timeline)
	}
	_ = allCPU
}

func TestAllCPUHasNoTransfers(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Uniform(e.NumSubgraphs(), device.CPU), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Timeline {
		if strings.HasPrefix(s.Label, "xfer:") {
			t.Fatalf("all-CPU run scheduled a transfer: %+v", s)
		}
	}
}

func TestAllGPUPaysInputAndOutputTransfers(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Uniform(e.NumSubgraphs(), device.GPU), false)
	if err != nil {
		t.Fatal(err)
	}
	in, out := 0, 0
	for _, s := range res.Timeline {
		if strings.HasPrefix(s.Label, "xfer:CPU→GPU") {
			in++
		}
		if strings.HasPrefix(s.Label, "xfer:GPU→CPU") {
			out++
		}
	}
	if in < 2 || out < 1 {
		t.Fatalf("GPU run should move inputs over and the result back: in=%d out=%d", in, out)
	}
}

func TestConcurrentBranchesOverlapOnTimeline(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	n := e.NumSubgraphs()
	// Branch A on CPU, branch B on GPU, head on CPU.
	place := Placement{device.CPU, device.GPU, device.CPU}
	if n != 3 {
		t.Fatalf("expected 3 subgraphs, got %d", n)
	}
	res, err := e.Run(nil, place, false)
	if err != nil {
		t.Fatal(err)
	}
	var spans []Span
	for _, s := range res.Timeline {
		if !strings.HasPrefix(s.Label, "xfer:") {
			spans = append(spans, s)
		}
	}
	if len(spans) != 3 {
		t.Fatalf("want 3 compute spans, got %d", len(spans))
	}
	a, b := spans[0], spans[1]
	if a.Start >= b.End || b.Start >= a.End {
		t.Fatalf("independent branches did not overlap: %+v %+v", a, b)
	}
}

func TestSerialExecutionWithinDevice(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Uniform(e.NumSubgraphs(), device.CPU), false)
	if err != nil {
		t.Fatal(err)
	}
	var prevEnd vclock.Seconds
	for _, s := range res.Timeline {
		if strings.HasPrefix(s.Label, "xfer:") {
			continue
		}
		if s.Start < prevEnd {
			t.Fatalf("same-device subgraphs overlap: %+v", res.Timeline)
		}
		prevEnd = s.End
	}
}

func TestRunErrors(t *testing.T) {
	p, inputs := branchy(t)
	e := newEngine(t, p, 0)
	if _, err := e.Run(inputs, Placement{device.CPU}, true); err == nil {
		t.Fatalf("expected placement-length error")
	}
	if _, err := e.Run(map[string]*tensor.Tensor{}, Uniform(e.NumSubgraphs(), device.CPU), true); err == nil {
		t.Fatalf("expected missing-input error")
	}
	bad := map[string]*tensor.Tensor{"xa": tensor.New(2, 1024), "xb": tensor.New(1, 1024)}
	if _, err := e.Run(bad, Uniform(e.NumSubgraphs(), device.CPU), true); err == nil {
		t.Fatalf("expected shape error")
	}
}

func TestMeasureLatencyDeterministicUnderSeed(t *testing.T) {
	p, _ := branchy(t)
	a := newEngine(t, p, 77)
	b := newEngine(t, p, 77)
	place := Uniform(a.NumSubgraphs(), device.GPU)
	sa, err := a.MeasureLatency(place, 50)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.MeasureLatency(place, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d differs under identical seeds", i)
		}
	}
	// And noise actually produces variance.
	if vclock.Percentile(sa, 99) == vclock.Percentile(sa, 0) {
		t.Fatalf("expected run-to-run variance under seeded noise")
	}
}

func TestPlacementHelpers(t *testing.T) {
	p := Placement{device.CPU, device.GPU}
	if p.String() != "CG" {
		t.Fatalf("String = %q", p.String())
	}
	c := p.Clone()
	c[0] = device.GPU
	if p[0] != device.CPU {
		t.Fatalf("Clone aliases")
	}
	if Uniform(3, device.GPU).String() != "GGG" {
		t.Fatalf("Uniform wrong")
	}
}
