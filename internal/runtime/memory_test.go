package runtime

import (
	"encoding/json"
	"strings"
	"testing"

	"duet/internal/device"
)

func TestMemoryAllCPU(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	rep, err := e.Memory(Uniform(e.NumSubgraphs(), device.CPU))
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeightBytes[device.GPU] != 0 {
		t.Fatalf("all-CPU placement put weights on GPU: %+v", rep)
	}
	// Two 1024×1024 float32 weight matrices = 8 MiB.
	if rep.WeightBytes[device.CPU] != 2*1024*1024*4 {
		t.Fatalf("CPU weights = %d", rep.WeightBytes[device.CPU])
	}
	if rep.TransferBytes != 0 {
		t.Fatalf("all-CPU placement should transfer nothing, got %d", rep.TransferBytes)
	}
}

func TestMemorySplitPlacement(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	place := Placement{device.CPU, device.GPU, device.CPU}
	rep, err := e.Memory(place)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WeightBytes[device.CPU] == 0 || rep.WeightBytes[device.GPU] == 0 {
		t.Fatalf("split placement should spread weights: %+v", rep)
	}
	// Branch B's input goes CPU→GPU and its output GPU→CPU: 2 crossings of
	// a (1,1024) tensor.
	if rep.TransferBytes != 2*1024*4 {
		t.Fatalf("TransferBytes = %d, want %d", rep.TransferBytes, 2*1024*4)
	}
	if rep.Total(device.CPU) <= rep.WeightBytes[device.CPU] {
		t.Fatalf("Total must include activations")
	}
	if !strings.Contains(rep.String(), "MiB") {
		t.Fatalf("String format wrong: %s", rep.String())
	}
}

func TestMemoryPlacementLengthError(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	if _, err := e.Memory(Placement{device.CPU}); err == nil {
		t.Fatalf("expected length error")
	}
}

func TestChromeTrace(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Placement{device.CPU, device.GPU, device.CPU}, false)
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
			Cat   string  `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != len(res.Timeline) {
		t.Fatalf("events = %d, spans = %d", len(parsed.TraceEvents), len(res.Timeline))
	}
	tids := map[int]bool{}
	cats := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		if ev.Phase != "X" || ev.Dur < 0 {
			t.Fatalf("bad event: %+v", ev)
		}
		tids[ev.TID] = true
		cats[ev.Cat] = true
	}
	// CPU, GPU and the interconnect each get a track.
	if len(tids) != 3 {
		t.Fatalf("expected 3 tracks, got %d", len(tids))
	}
	if !cats["compute"] || !cats["transfer"] {
		t.Fatalf("missing categories: %v", cats)
	}
}
