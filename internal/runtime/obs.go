package runtime

import (
	"duet/internal/compiler"
	"duet/internal/device"
	"duet/internal/obs"
	"duet/internal/tensor"
)

// engineMetrics caches the engine's resolved instruments so the hot paths
// pay one registry lookup per instrument at Instrument time, and only a
// nil check per event afterwards. The zero value (uninstrumented engine)
// is all-nil: every recording call is a no-op.
type engineMetrics struct {
	reg *obs.Registry

	runs       *obs.Counter   // duet_runs_total{path=run}
	policyRuns *obs.Counter   // duet_runs_total{path=policy}
	runErrors  *obs.Counter   // duet_run_errors_total
	exhausted  *obs.Counter   // duet_exhausted_total
	latency    *obs.Histogram // duet_latency_seconds{path=run}
	policyLat  *obs.Histogram // duet_latency_seconds{path=policy}

	deviceBusy [2]*obs.Gauge // duet_device_busy_seconds_total{device=...}
	linkBusy   *obs.Gauge    // duet_device_busy_seconds_total{device=<link>}

	arenaHits      *obs.Gauge // duet_arena_events_total{event=hit}
	arenaMisses    *obs.Gauge // duet_arena_events_total{event=miss}
	arenaRecycled  *obs.Gauge // duet_arena_events_total{event=recycled}
	arenaDiscarded *obs.Gauge // duet_arena_events_total{event=discarded}
	packHits       *obs.Gauge // duet_packcache_events_total{event=hit}
	packMisses     *obs.Gauge // duet_packcache_events_total{event=miss}
	packBytes      *obs.Gauge // duet_packcache_bytes

	fusionGroups      *obs.Gauge // duet_fusion_groups
	fusionChainOps    *obs.Gauge // duet_fusion_chain_ops
	fusionEmits       *obs.Gauge // duet_fusion_emits
	fusionRecompFLOPs *obs.Gauge // duet_fusion_recompute_flops
	fusionRecompBytes *obs.Gauge // duet_fusion_recompute_bytes
	fusionSavedLaunch *obs.Gauge // duet_fusion_launches_saved

	kernelFaults    *obs.Counter // duet_faults_total{kind=kernel}
	transferFaults  *obs.Counter // duet_faults_total{kind=transfer}
	retries         *obs.Counter // duet_retries_total{kind=kernel}
	transferRetries *obs.Counter // duet_retries_total{kind=transfer}
	failovers       *obs.Counter // duet_failovers_total
	breakerTrips    *obs.Counter // duet_breaker_trips_total
	degraded        *obs.Counter // duet_degraded_total
}

// Instrument attaches a metrics registry to the engine. Subsequent Run /
// RunWithPolicy / RunParallel calls record run counts, latency histograms,
// per-device busy seconds, fault-tolerance activity, and (for RunParallel)
// synchronization-queue depths into reg. Passing nil detaches. The engine
// is not safe for concurrent Instrument against in-flight runs; attach
// once at setup, the way core.Build's callers do.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		e.m = engineMetrics{}
		return
	}
	m := engineMetrics{
		reg:        reg,
		runs:       reg.Counter(obs.Series("duet_runs_total", "path", "run")),
		policyRuns: reg.Counter(obs.Series("duet_runs_total", "path", "policy")),
		runErrors:  reg.Counter("duet_run_errors_total"),
		exhausted:  reg.Counter("duet_exhausted_total"),
		latency:    reg.Histogram(obs.Series("duet_latency_seconds", "path", "run")),
		policyLat:  reg.Histogram(obs.Series("duet_latency_seconds", "path", "policy")),

		arenaHits:      reg.Gauge(obs.Series("duet_arena_events_total", "event", "hit")),
		arenaMisses:    reg.Gauge(obs.Series("duet_arena_events_total", "event", "miss")),
		arenaRecycled:  reg.Gauge(obs.Series("duet_arena_events_total", "event", "recycled")),
		arenaDiscarded: reg.Gauge(obs.Series("duet_arena_events_total", "event", "discarded")),
		packHits:       reg.Gauge(obs.Series("duet_packcache_events_total", "event", "hit")),
		packMisses:     reg.Gauge(obs.Series("duet_packcache_events_total", "event", "miss")),
		packBytes:      reg.Gauge("duet_packcache_bytes"),

		fusionGroups:      reg.Gauge("duet_fusion_groups"),
		fusionChainOps:    reg.Gauge("duet_fusion_chain_ops"),
		fusionEmits:       reg.Gauge("duet_fusion_emits"),
		fusionRecompFLOPs: reg.Gauge("duet_fusion_recompute_flops"),
		fusionRecompBytes: reg.Gauge("duet_fusion_recompute_bytes"),
		fusionSavedLaunch: reg.Gauge("duet_fusion_launches_saved"),

		kernelFaults:    reg.Counter(obs.Series("duet_faults_total", "kind", "kernel")),
		transferFaults:  reg.Counter(obs.Series("duet_faults_total", "kind", "transfer")),
		retries:         reg.Counter(obs.Series("duet_retries_total", "kind", "kernel")),
		transferRetries: reg.Counter(obs.Series("duet_retries_total", "kind", "transfer")),
		failovers:       reg.Counter("duet_failovers_total"),
		breakerTrips:    reg.Counter("duet_breaker_trips_total"),
		degraded:        reg.Counter("duet_degraded_total"),
	}
	for _, kind := range []device.Kind{device.CPU, device.GPU} {
		name := e.Platform.Device(kind).Name
		m.deviceBusy[kind] = reg.Gauge(obs.Series("duet_device_busy_seconds_total", "device", name))
	}
	m.linkBusy = reg.Gauge(obs.Series("duet_device_busy_seconds_total", "device", e.Platform.Link.Name))
	m.recordFusion(e.modules)
	e.m = m
}

// recordFusion publishes the compile-time fusion plan of the engine's
// modules: group and chain-op counts, materialized intermediates, the
// recompute volume the arbitration accepted, and how many kernel launches
// fusion removed relative to dispatching every op on its own. The plan is
// fixed at compile, so the gauges are set once at Instrument time.
func (m *engineMetrics) recordFusion(modules []*compiler.Module) {
	var s compiler.FusionStats
	saved := 0
	for _, mod := range modules {
		ms := mod.FusionStats()
		s.Groups += ms.Groups
		s.FusedOps += ms.FusedOps
		s.Emits += ms.Emits
		s.RecomputeFLOPs += ms.RecomputeFLOPs
		s.RecomputeBytes += ms.RecomputeBytes
		saved += mod.UnfusedLaunchCount() - mod.LaunchCount()
	}
	m.fusionGroups.Set(float64(s.Groups))
	m.fusionChainOps.Set(float64(s.FusedOps - s.Groups))
	m.fusionEmits.Set(float64(s.Emits))
	m.fusionRecompFLOPs.Set(s.RecomputeFLOPs)
	m.fusionRecompBytes.Set(s.RecomputeBytes)
	m.fusionSavedLaunch.Set(float64(saved))
}

// Registry returns the attached metrics registry (nil when the engine is
// uninstrumented).
func (e *Engine) Registry() *obs.Registry { return e.m.reg }

// recordMemory publishes the arena's and the weight pack cache's cumulative
// event counts as gauges. Called after each value-carrying run; both sources
// are monotonic counters sampled at run granularity, so Set (not Add) is
// correct. No-op when uninstrumented or when the arena is disabled.
func (m *engineMetrics) recordMemory(ar *tensor.Arena) {
	if m.reg == nil {
		return
	}
	if ar != nil {
		s := ar.Stats()
		m.arenaHits.Set(float64(s.Hits))
		m.arenaMisses.Set(float64(s.Misses))
		m.arenaRecycled.Set(float64(s.Recycled))
		m.arenaDiscarded.Set(float64(s.Discarded))
	}
	p := tensor.PackCacheSnapshot()
	m.packHits.Set(float64(p.Hits))
	m.packMisses.Set(float64(p.Misses))
	m.packBytes.Set(float64(p.Bytes))
}

// recordPolicyReport folds one RunWithPolicy fault report into the
// registry. All fields are no-ops when uninstrumented.
func (m *engineMetrics) recordPolicyReport(rep *FaultReport) {
	m.kernelFaults.Add(int64(rep.KernelFaults))
	m.transferFaults.Add(int64(rep.TransferFaults))
	m.retries.Add(int64(rep.Retries))
	m.transferRetries.Add(int64(rep.TransferRetries))
	m.failovers.Add(int64(rep.Failovers))
	m.breakerTrips.Add(int64(rep.BreakerTrips))
	m.degraded.Add(int64(rep.Degraded))
}
