package runtime

import (
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/vclock"
)

// PipelineResult summarises a back-to-back multi-request run.
type PipelineResult struct {
	// Requests is the number of simulated requests.
	Requests int
	// Makespan is the time from the first request's start to the last
	// request's completion.
	Makespan vclock.Seconds
	// Throughput is Requests / Makespan in requests per second.
	Throughput float64
	// MeanLatency is the mean per-request completion time (queueing
	// included; all requests are available at t=0).
	MeanLatency vclock.Seconds
}

// MeasurePipelined simulates `requests` back-to-back inferences under the
// placement without resetting the device clocks between requests: request
// r+1's subgraphs queue behind request r's on each device, so a
// heterogeneous placement overlaps one request's CPU phase with the next
// request's GPU phase. This is the throughput view of co-execution — the
// latency view is Run. Timing-only.
func (e *Engine) MeasurePipelined(place Placement, requests int) (*PipelineResult, error) {
	// Full validation (length and device kinds), not just a length check: an
	// out-of-range kind would otherwise panic inside Platform.Device.
	if err := e.validatePlacement(place); err != nil {
		return nil, err
	}
	if requests < 1 {
		requests = 1
	}
	link := e.Platform.Link
	deviceFree := [2]vclock.Seconds{}
	var makespan vclock.Seconds
	var latencySum vclock.Seconds

	for r := 0; r < requests; r++ {
		type avail [2]vclock.Seconds
		ready := make(map[graph.NodeID]*avail, e.Parent.Len())
		for _, id := range e.Parent.InputIDs() {
			ready[id] = &avail{0, -1}
		}
		ensureOn := func(id graph.NodeID, kind device.Kind) vclock.Seconds {
			a := ready[id]
			if a[kind] >= 0 {
				return a[kind]
			}
			other := device.CPU
			if kind == device.CPU {
				other = device.GPU
			}
			a[kind] = a[other] + link.SampleTransferTime(e.Parent.DataSize(id))
			return a[kind]
		}
		for i, sub := range e.subgraphs {
			kind := place[i]
			dev := e.Platform.Device(kind)
			start := deviceFree[kind]
			for _, pid := range sub.BoundaryInputs {
				if t := ensureOn(pid, kind); t > start {
					start = t
				}
			}
			start += syncQueueOverhead
			var dur vclock.Seconds
			for _, c := range e.tuned[i][kind] {
				dur += dev.SampleKernelTime(c)
			}
			end := start + dur
			deviceFree[kind] = end
			for _, pid := range sub.Outputs {
				a, ok := ready[pid]
				if !ok {
					a = &avail{-1, -1}
					ready[pid] = a
				}
				a[kind] = end
			}
		}
		var finish vclock.Seconds
		for _, o := range e.Parent.Outputs() {
			if t := ensureOn(o, device.CPU); t > finish {
				finish = t
			}
		}
		latencySum += finish
		if finish > makespan {
			makespan = finish
		}
	}

	res := &PipelineResult{
		Requests:    requests,
		Makespan:    makespan,
		MeanLatency: latencySum / vclock.Seconds(requests),
	}
	if makespan > 0 {
		res.Throughput = float64(requests) / makespan
	}
	return res, nil
}
