package runtime

import (
	"sync"

	"duet/internal/device"
	"duet/internal/vclock"
)

// breakerState is the per-device circuit-breaker state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// HealthTracker is a per-device failure counter and circuit breaker. After
// Threshold consecutive failures on a device the breaker opens and the
// device is reported unavailable — the runtime analogue of the paper's
// static single-device fallback (§IV-C), applied to the *remaining*
// placement mid-request. After Probation virtual seconds the breaker
// half-opens: the next caller is admitted as a probe, and its success closes
// the breaker (re-admission) while its failure re-opens it for another
// probation window.
//
// The tracker is safe for concurrent use so a serving layer can share one
// across requests; the engine's own timing pass uses it serially.
type HealthTracker struct {
	mu        sync.Mutex
	threshold int
	probation vclock.Seconds
	consec    [2]int
	state     [2]breakerState
	retryAt   [2]vclock.Seconds
	trips     int
	readmits  int
}

// NewHealthTracker returns a tracker tripping after threshold consecutive
// failures and probing again after probation virtual seconds. A threshold
// ≤ 0 disables the breaker: every device is always available.
func NewHealthTracker(threshold int, probation vclock.Seconds) *HealthTracker {
	return &HealthTracker{threshold: threshold, probation: probation}
}

// Available reports whether kind may be scheduled at virtual time now. An
// open breaker whose probation has expired half-opens and admits the caller
// as a probe.
func (h *HealthTracker) Available(kind device.Kind, now vclock.Seconds) bool {
	if h == nil || h.threshold <= 0 {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state[kind] {
	case breakerClosed, breakerHalfOpen:
		return true
	default: // open
		if now >= h.retryAt[kind] {
			h.state[kind] = breakerHalfOpen
			return true
		}
		return false
	}
}

// Failure records a failed attempt on kind at virtual time now and reports
// whether this failure tripped (or re-tripped) the breaker.
func (h *HealthTracker) Failure(kind device.Kind, now vclock.Seconds) bool {
	if h == nil || h.threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec[kind]++
	if h.state[kind] == breakerHalfOpen {
		// The probe failed: back to open for another probation window.
		h.state[kind] = breakerOpen
		h.retryAt[kind] = now + h.probation
		h.trips++
		return true
	}
	if h.state[kind] == breakerClosed && h.consec[kind] >= h.threshold {
		h.state[kind] = breakerOpen
		h.retryAt[kind] = now + h.probation
		h.trips++
		return true
	}
	return false
}

// Success records a completed attempt on kind; a half-open breaker closes
// (the device is re-admitted).
func (h *HealthTracker) Success(kind device.Kind) {
	if h == nil || h.threshold <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec[kind] = 0
	if h.state[kind] != breakerClosed {
		if h.state[kind] == breakerHalfOpen {
			h.readmits++
		}
		h.state[kind] = breakerClosed
	}
}

// Trips returns how many times any breaker opened.
func (h *HealthTracker) Trips() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trips
}

// Readmissions returns how many probes closed an open breaker.
func (h *HealthTracker) Readmissions() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.readmits
}
