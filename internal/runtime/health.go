package runtime

import (
	"sync"

	"duet/internal/device"
	"duet/internal/obs"
	"duet/internal/vclock"
)

// breakerState is the per-slot circuit-breaker state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for metric labels and logs.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// kindLabel is the metric label for a device kind (the tracker predates
// any particular platform, so it labels by kind, not device name).
func kindLabel(k device.Kind) string {
	if k == device.GPU {
		return "gpu"
	}
	return "cpu"
}

// HealthTracker is a per-slot failure counter and circuit breaker. After
// Threshold consecutive failures on a slot the breaker opens and the slot is
// reported unavailable. In the engine a slot is a device — the runtime
// analogue of the paper's static single-device fallback (§IV-C), applied to
// the *remaining* placement mid-request. In the cluster fabric a slot is a
// whole serving node, so the same probation machinery guards failover
// targets. After Probation virtual seconds the breaker half-opens: the next
// caller is admitted as a probe, and its success closes the breaker
// (re-admission) while its failure re-opens it for another probation window.
//
// The tracker is safe for concurrent use so a serving layer can share one
// across requests; the engine's own timing pass uses it serially.
type HealthTracker struct {
	mu        sync.Mutex
	threshold int
	probation vclock.Seconds
	consec    []int
	state     []breakerState
	retryAt   []vclock.Seconds
	trips     int
	readmits  int

	// Observability (nil when uninstrumented): breaker state gauges
	// (0=closed, 1=open, 2=half-open), per-transition counters, and a
	// readmission counter. Only the two-slot device form is instrumented;
	// cluster trackers publish their own per-node gauges.
	reg        *obs.Registry
	stateGauge []*obs.Gauge
}

// NewHealthTracker returns a two-slot (CPU/GPU) tracker tripping after
// threshold consecutive failures and probing again after probation virtual
// seconds. A threshold ≤ 0 disables the breaker: every device is always
// available.
func NewHealthTracker(threshold int, probation vclock.Seconds) *HealthTracker {
	return NewHealthTrackerN(2, threshold, probation)
}

// NewHealthTrackerN returns a tracker guarding n independent slots — one per
// backend the caller multiplexes over (devices, serving nodes). Slots share
// the threshold and probation but trip and recover independently.
func NewHealthTrackerN(n, threshold int, probation vclock.Seconds) *HealthTracker {
	if n < 1 {
		n = 1
	}
	return &HealthTracker{
		threshold:  threshold,
		probation:  probation,
		consec:     make([]int, n),
		state:      make([]breakerState, n),
		retryAt:    make([]vclock.Seconds, n),
		stateGauge: make([]*obs.Gauge, n),
	}
}

// Slots returns the number of independent breaker slots.
func (h *HealthTracker) Slots() int {
	if h == nil {
		return 0
	}
	return len(h.state)
}

// Instrument attaches a metrics registry: breaker state per device kind
// (duet_breaker_state, 0=closed/1=open/2=half-open), transition counts
// (duet_breaker_transitions_total{device,to}) and probe re-admissions
// (duet_readmissions_total). The tracker owns the readmission counter —
// engines must not fold the cumulative FaultReport.Readmissions into a
// registry, because a shared tracker reports it across runs. Re-attaching
// the same registry is a no-op; nil is ignored, as is any tracker that is
// not the two-slot device form (cluster trackers export their own gauges).
func (h *HealthTracker) Instrument(reg *obs.Registry) {
	if h == nil || reg == nil || len(h.state) != 2 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.reg == reg {
		return
	}
	h.reg = reg
	for _, k := range []device.Kind{device.CPU, device.GPU} {
		h.stateGauge[k] = reg.Gauge(obs.Series("duet_breaker_state", "device", kindLabel(k)))
		h.stateGauge[k].Set(float64(h.state[k]))
	}
}

// setState records a breaker transition and its metrics. Callers hold h.mu.
func (h *HealthTracker) setState(slot int, s breakerState) {
	h.state[slot] = s
	h.stateGauge[slot].Set(float64(s))
	if h.reg != nil {
		h.reg.Counter(obs.Series("duet_breaker_transitions_total",
			"device", kindLabel(device.Kind(slot)), "to", s.String())).Inc()
	}
}

// Available reports whether kind may be scheduled at virtual time now. An
// open breaker whose probation has expired half-opens and admits the caller
// as a probe.
func (h *HealthTracker) Available(kind device.Kind, now vclock.Seconds) bool {
	return h.SlotAvailable(int(kind), now)
}

// SlotAvailable is Available for an arbitrary slot index.
func (h *HealthTracker) SlotAvailable(slot int, now vclock.Seconds) bool {
	if h == nil || h.threshold <= 0 {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state[slot] {
	case breakerClosed, breakerHalfOpen:
		return true
	default: // open
		if now >= h.retryAt[slot] {
			h.setState(slot, breakerHalfOpen)
			return true
		}
		return false
	}
}

// Failure records a failed attempt on kind at virtual time now and reports
// whether this failure tripped (or re-tripped) the breaker.
func (h *HealthTracker) Failure(kind device.Kind, now vclock.Seconds) bool {
	return h.SlotFailure(int(kind), now)
}

// SlotFailure is Failure for an arbitrary slot index.
func (h *HealthTracker) SlotFailure(slot int, now vclock.Seconds) bool {
	if h == nil || h.threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec[slot]++
	if h.state[slot] == breakerHalfOpen {
		// The probe failed: back to open for another probation window.
		h.setState(slot, breakerOpen)
		h.retryAt[slot] = now + h.probation
		h.trips++
		return true
	}
	if h.state[slot] == breakerClosed && h.consec[slot] >= h.threshold {
		h.setState(slot, breakerOpen)
		h.retryAt[slot] = now + h.probation
		h.trips++
		return true
	}
	return false
}

// Success records a completed attempt on kind; a half-open breaker closes
// (the device is re-admitted).
func (h *HealthTracker) Success(kind device.Kind) {
	h.SlotSuccess(int(kind))
}

// SlotSuccess is Success for an arbitrary slot index.
func (h *HealthTracker) SlotSuccess(slot int) {
	if h == nil || h.threshold <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec[slot] = 0
	if h.state[slot] != breakerClosed {
		if h.state[slot] == breakerHalfOpen {
			h.readmits++
			if h.reg != nil {
				h.reg.Counter("duet_readmissions_total").Inc()
			}
		}
		h.setState(slot, breakerClosed)
	}
}

// SlotState returns a slot's breaker state as a gauge code (0=closed,
// 1=open, 2=half-open) and its label.
func (h *HealthTracker) SlotState(slot int) (int, string) {
	if h == nil {
		return 0, breakerClosed.String()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.state[slot]
	return int(s), s.String()
}

// Trips returns how many times any breaker opened.
func (h *HealthTracker) Trips() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trips
}

// Readmissions returns how many probes closed an open breaker.
func (h *HealthTracker) Readmissions() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.readmits
}
