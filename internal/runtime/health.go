package runtime

import (
	"sync"

	"duet/internal/device"
	"duet/internal/obs"
	"duet/internal/vclock"
)

// breakerState is the per-device circuit-breaker state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for metric labels and logs.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// kindLabel is the metric label for a device kind (the tracker predates
// any particular platform, so it labels by kind, not device name).
func kindLabel(k device.Kind) string {
	if k == device.GPU {
		return "gpu"
	}
	return "cpu"
}

// HealthTracker is a per-device failure counter and circuit breaker. After
// Threshold consecutive failures on a device the breaker opens and the
// device is reported unavailable — the runtime analogue of the paper's
// static single-device fallback (§IV-C), applied to the *remaining*
// placement mid-request. After Probation virtual seconds the breaker
// half-opens: the next caller is admitted as a probe, and its success closes
// the breaker (re-admission) while its failure re-opens it for another
// probation window.
//
// The tracker is safe for concurrent use so a serving layer can share one
// across requests; the engine's own timing pass uses it serially.
type HealthTracker struct {
	mu        sync.Mutex
	threshold int
	probation vclock.Seconds
	consec    [2]int
	state     [2]breakerState
	retryAt   [2]vclock.Seconds
	trips     int
	readmits  int

	// Observability (nil when uninstrumented): breaker state gauges
	// (0=closed, 1=open, 2=half-open), per-transition counters, and a
	// readmission counter.
	reg        *obs.Registry
	stateGauge [2]*obs.Gauge
}

// NewHealthTracker returns a tracker tripping after threshold consecutive
// failures and probing again after probation virtual seconds. A threshold
// ≤ 0 disables the breaker: every device is always available.
func NewHealthTracker(threshold int, probation vclock.Seconds) *HealthTracker {
	return &HealthTracker{threshold: threshold, probation: probation}
}

// Instrument attaches a metrics registry: breaker state per device kind
// (duet_breaker_state, 0=closed/1=open/2=half-open), transition counts
// (duet_breaker_transitions_total{device,to}) and probe re-admissions
// (duet_readmissions_total). The tracker owns the readmission counter —
// engines must not fold the cumulative FaultReport.Readmissions into a
// registry, because a shared tracker reports it across runs. Re-attaching
// the same registry is a no-op; nil is ignored.
func (h *HealthTracker) Instrument(reg *obs.Registry) {
	if h == nil || reg == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.reg == reg {
		return
	}
	h.reg = reg
	for _, k := range []device.Kind{device.CPU, device.GPU} {
		h.stateGauge[k] = reg.Gauge(obs.Series("duet_breaker_state", "device", kindLabel(k)))
		h.stateGauge[k].Set(float64(h.state[k]))
	}
}

// setState records a breaker transition and its metrics. Callers hold h.mu.
func (h *HealthTracker) setState(kind device.Kind, s breakerState) {
	h.state[kind] = s
	h.stateGauge[kind].Set(float64(s))
	if h.reg != nil {
		h.reg.Counter(obs.Series("duet_breaker_transitions_total",
			"device", kindLabel(kind), "to", s.String())).Inc()
	}
}

// Available reports whether kind may be scheduled at virtual time now. An
// open breaker whose probation has expired half-opens and admits the caller
// as a probe.
func (h *HealthTracker) Available(kind device.Kind, now vclock.Seconds) bool {
	if h == nil || h.threshold <= 0 {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state[kind] {
	case breakerClosed, breakerHalfOpen:
		return true
	default: // open
		if now >= h.retryAt[kind] {
			h.setState(kind, breakerHalfOpen)
			return true
		}
		return false
	}
}

// Failure records a failed attempt on kind at virtual time now and reports
// whether this failure tripped (or re-tripped) the breaker.
func (h *HealthTracker) Failure(kind device.Kind, now vclock.Seconds) bool {
	if h == nil || h.threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec[kind]++
	if h.state[kind] == breakerHalfOpen {
		// The probe failed: back to open for another probation window.
		h.setState(kind, breakerOpen)
		h.retryAt[kind] = now + h.probation
		h.trips++
		return true
	}
	if h.state[kind] == breakerClosed && h.consec[kind] >= h.threshold {
		h.setState(kind, breakerOpen)
		h.retryAt[kind] = now + h.probation
		h.trips++
		return true
	}
	return false
}

// Success records a completed attempt on kind; a half-open breaker closes
// (the device is re-admitted).
func (h *HealthTracker) Success(kind device.Kind) {
	if h == nil || h.threshold <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consec[kind] = 0
	if h.state[kind] != breakerClosed {
		if h.state[kind] == breakerHalfOpen {
			h.readmits++
			if h.reg != nil {
				h.reg.Counter("duet_readmissions_total").Inc()
			}
		}
		h.setState(kind, breakerClosed)
	}
}

// Trips returns how many times any breaker opened.
func (h *HealthTracker) Trips() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trips
}

// Readmissions returns how many probes closed an open breaker.
func (h *HealthTracker) Readmissions() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.readmits
}
