package runtime

import (
	"encoding/json"
	"strings"
)

// traceEvent is one Chrome trace-event ("catapult") entry. Timestamps are
// microseconds.
type traceEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Cat   string  `json:"cat"`
}

// ChromeTrace renders a run's timeline in the Chrome trace-event JSON
// format (load via chrome://tracing or https://ui.perfetto.dev), with one
// track per device plus one for the interconnect.
func (r *Result) ChromeTrace() ([]byte, error) {
	tids := map[string]int{}
	nextTID := 1
	events := make([]traceEvent, 0, len(r.Timeline))
	for _, s := range r.Timeline {
		tid, ok := tids[s.Device]
		if !ok {
			tid = nextTID
			nextTID++
			tids[s.Device] = tid
		}
		cat := "compute"
		switch {
		case strings.HasPrefix(s.Label, "xfer:"):
			cat = "transfer"
		case strings.HasPrefix(s.Label, "fault:"), strings.HasPrefix(s.Label, "backoff:"):
			cat = "fault"
		}
		events = append(events, traceEvent{
			Name:  s.Label,
			Phase: "X",
			TS:    s.Start * 1e6,
			Dur:   (s.End - s.Start) * 1e6,
			PID:   1,
			TID:   tid,
			Cat:   cat,
		})
	}
	return json.MarshalIndent(map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	}, "", "  ")
}
