package runtime

import (
	"strings"

	"duet/internal/obs"
)

// spanCategory classifies a timeline label for trace rendering: transfers
// (including faulted ones re-labelled "fault:<cause>:xfer:..."), fault and
// backoff intervals, and plain compute.
func spanCategory(label string) string {
	switch {
	case strings.HasPrefix(label, "xfer:"):
		return "transfer"
	case strings.HasPrefix(label, "fault:"), strings.HasPrefix(label, "backoff:"):
		return "fault"
	default:
		return "compute"
	}
}

// ObsSpans converts the run's timeline into obs spans, one track per
// device plus one for the interconnect.
func (r *Result) ObsSpans() []obs.Span {
	spans := make([]obs.Span, 0, len(r.Timeline))
	for _, s := range r.Timeline {
		spans = append(spans, obs.Span{
			Name:     s.Label,
			Track:    s.Device,
			Category: spanCategory(s.Label),
			Start:    float64(s.Start),
			End:      float64(s.End),
		})
	}
	return spans
}

// ChromeTrace renders a run's timeline in the Chrome trace-event JSON
// format (load via chrome://tracing or https://ui.perfetto.dev).
func (r *Result) ChromeTrace() ([]byte, error) {
	return obs.ChromeTrace(r.ObsSpans())
}
