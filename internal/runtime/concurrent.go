package runtime

import (
	"fmt"
	"math"

	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/vclock"
)

// RunConcurrent executes the placement with intra-device concurrency — the
// paper's footnote-2 extension where multiple independent subgraphs may
// execute concurrently *within* one device. Each device is modelled as a
// processor-sharing server: the k subgraphs resident on a device at an
// instant each progress at 1/k of its throughput (work-conserving), and a
// subgraph starts the moment its inputs are available rather than when the
// device drains its queue. Timing-only; real values come from Run.
func (e *Engine) RunConcurrent(place Placement) (*Result, error) {
	if err := e.validatePlacement(place); err != nil {
		return nil, err
	}

	n := len(e.subgraphs)
	// Service demand per subgraph on its assigned device.
	demand := make([]vclock.Seconds, n)
	for i := range e.subgraphs {
		dev := e.Platform.Device(place[i])
		for _, c := range e.tuned[i][place[i]] {
			demand[i] += dev.SampleKernelTime(c)
		}
		demand[i] += syncQueueOverhead
	}

	// producerOf maps a parent node to the subgraph index publishing it
	// (-1 for graph inputs).
	producerOf := make(map[graph.NodeID]int)
	for _, id := range e.Parent.InputIDs() {
		producerOf[id] = -1
	}
	for i, sub := range e.subgraphs {
		for _, pid := range sub.Outputs {
			producerOf[pid] = i
		}
	}

	// waiting counts unresolved boundary inputs per subgraph; readyAt is
	// the max availability time seen so far.
	waiting := make([]int, n)
	readyAt := make([]vclock.Seconds, n)
	res := &Result{}
	link := e.Platform.Link

	// availability returns when a value published by producer p (completed
	// at t) is usable by consumer i, adding a transfer when devices differ.
	availability := func(pid graph.NodeID, p int, t vclock.Seconds, i int) vclock.Seconds {
		src := device.CPU
		if p >= 0 {
			src = place[p]
		}
		dst := place[i]
		if src == dst {
			return t
		}
		dur := link.SampleTransferTime(e.Parent.DataSize(pid))
		res.Timeline = append(res.Timeline, Span{
			Label:  fmt.Sprintf("xfer:%s→%s:%s", src, dst, e.Parent.Node(pid).Name),
			Device: link.Name,
			Start:  t,
			End:    t + dur,
		})
		return t + dur
	}

	type edge struct {
		pid      graph.NodeID
		consumer int
	}
	edgesOf := make(map[int][]edge) // producer -> deferred edges
	for i, sub := range e.subgraphs {
		for _, pid := range sub.BoundaryInputs {
			p, ok := producerOf[pid]
			if !ok {
				return nil, fmt.Errorf("runtime: no producer for %q", e.Parent.Node(pid).Name)
			}
			if p == -1 {
				// Graph input: available on CPU at t=0.
				if t := availability(pid, -1, 0, i); t > readyAt[i] {
					readyAt[i] = t
				}
				continue
			}
			waiting[i]++
			edgesOf[p] = append(edgesOf[p], edge{pid, i})
		}
	}

	// Processor-sharing event loop.
	const inf = math.MaxFloat64
	remaining := append([]vclock.Seconds(nil), demand...)
	started := make([]vclock.Seconds, n)
	arrived := make([]bool, n)
	finished := make([]bool, n)
	finishAt := make([]vclock.Seconds, n)
	active := [2]map[int]bool{{}, {}}

	arrivalTime := func(i int) vclock.Seconds {
		if arrived[i] || finished[i] || waiting[i] > 0 {
			return inf
		}
		return readyAt[i]
	}

	clock := vclock.Seconds(0)
	done := 0
	for done < n {
		// Next arrival.
		nextArr := vclock.Seconds(inf)
		arrIdx := -1
		for i := 0; i < n; i++ {
			if t := arrivalTime(i); t < nextArr {
				nextArr = t
				arrIdx = i
			}
		}
		// Next completion under current sharing rates.
		nextComp := vclock.Seconds(inf)
		compIdx := -1
		for d := 0; d < 2; d++ {
			k := len(active[d])
			if k == 0 {
				continue
			}
			for i := range active[d] {
				t := clock + remaining[i]*vclock.Seconds(k)
				if t < nextComp {
					nextComp = t
					compIdx = i
				}
			}
		}
		if arrIdx == -1 && compIdx == -1 {
			return nil, fmt.Errorf("runtime: deadlock in concurrent simulation (cyclic placement?)")
		}

		if nextArr <= nextComp {
			// Advance work to the arrival instant, then admit the job.
			advance(active, remaining, nextArr-clock)
			clock = nextArr
			arrived[arrIdx] = true
			started[arrIdx] = clock
			active[place[arrIdx]][arrIdx] = true
			continue
		}
		advance(active, remaining, nextComp-clock)
		clock = nextComp
		i := compIdx
		remaining[i] = 0
		finished[i] = true
		finishAt[i] = clock
		delete(active[place[i]], i)
		done++
		res.Timeline = append(res.Timeline, Span{
			Label:  e.subgraphs[i].Graph.Name + " [" + e.subgraphs[i].Summary() + "]",
			Device: e.Platform.Device(place[i]).Name,
			Start:  started[i],
			End:    clock,
		})
		for _, ed := range edgesOf[i] {
			t := availability(ed.pid, i, clock, ed.consumer)
			if t > readyAt[ed.consumer] {
				readyAt[ed.consumer] = t
			}
			waiting[ed.consumer]--
		}
	}

	// Results return to the host.
	finish := vclock.Seconds(0)
	for _, o := range e.Parent.Outputs() {
		p := producerOf[o]
		t := finishAt[p]
		if place[p] == device.GPU {
			t += link.SampleTransferTime(e.Parent.DataSize(o))
		}
		if t > finish {
			finish = t
		}
	}
	res.Latency = finish
	return res, nil
}

// advance progresses every active job by dt of wall time under equal
// processor sharing.
func advance(active [2]map[int]bool, remaining []vclock.Seconds, dt vclock.Seconds) {
	if dt <= 0 {
		return
	}
	for d := 0; d < 2; d++ {
		k := vclock.Seconds(len(active[d]))
		if k == 0 {
			continue
		}
		for i := range active[d] {
			remaining[i] -= dt / k
			if remaining[i] < 0 {
				remaining[i] = 0
			}
		}
	}
}

// MeasureConcurrent samples end-to-end latency under intra-device
// concurrency.
func (e *Engine) MeasureConcurrent(place Placement, runs int) ([]vclock.Seconds, error) {
	samples := make([]vclock.Seconds, 0, runs)
	for r := 0; r < runs; r++ {
		res, err := e.RunConcurrent(place)
		if err != nil {
			return nil, err
		}
		samples = append(samples, res.Latency)
	}
	return samples, nil
}
