package runtime

import (
	"fmt"

	"duet/internal/device"
	"duet/internal/graph"
)

// MemoryReport summarises the per-device memory footprint of a placement:
// weights stay resident on the device executing their subgraph, boundary
// activations that cross the interconnect are staged on both devices, and
// ActivationBytes bounds the live intermediate tensors per device.
type MemoryReport struct {
	// WeightBytes is the resident parameter storage per device kind.
	WeightBytes [2]int
	// ActivationBytes is the peak boundary-activation staging per device:
	// every subgraph's inputs plus outputs resident while it runs.
	ActivationBytes [2]int
	// TransferBytes is the total volume crossing the interconnect per
	// inference under this placement.
	TransferBytes int
}

// Total returns the full footprint of one device kind.
func (m MemoryReport) Total(k device.Kind) int {
	return m.WeightBytes[k] + m.ActivationBytes[k]
}

// String renders the report in MiB.
func (m MemoryReport) String() string {
	const mib = 1 << 20
	return fmt.Sprintf("cpu: %.1f MiB weights + %.1f MiB activations; gpu: %.1f MiB weights + %.1f MiB activations; %.2f MiB/inference over PCIe",
		float64(m.WeightBytes[device.CPU])/mib, float64(m.ActivationBytes[device.CPU])/mib,
		float64(m.WeightBytes[device.GPU])/mib, float64(m.ActivationBytes[device.GPU])/mib,
		float64(m.TransferBytes)/mib)
}

// Memory computes the memory footprint of a placement.
func (e *Engine) Memory(place Placement) (MemoryReport, error) {
	if err := e.validatePlacement(place); err != nil {
		return MemoryReport{}, err
	}
	var rep MemoryReport

	producerKind := make(map[graph.NodeID]device.Kind)
	for _, id := range e.Parent.InputIDs() {
		producerKind[id] = device.CPU
	}
	for i, sub := range e.subgraphs {
		kind := place[i]
		// Weights of this subgraph live on its device.
		for _, n := range sub.Graph.Nodes() {
			if n.IsConst() {
				rep.WeightBytes[kind] += n.Value.Bytes()
			}
		}
		// Peak live activations while this subgraph runs.
		live := sub.InputBytes(e.Parent) + sub.OutputBytes(e.Parent)
		if live > rep.ActivationBytes[kind] {
			rep.ActivationBytes[kind] = live
		}
		// Cross-device input traffic.
		for _, pid := range sub.BoundaryInputs {
			src, ok := producerKind[pid]
			if !ok {
				return MemoryReport{}, fmt.Errorf("runtime: no producer for %q", e.Parent.Node(pid).Name)
			}
			if src != kind {
				rep.TransferBytes += e.Parent.DataSize(pid)
			}
		}
		for _, pid := range sub.Outputs {
			producerKind[pid] = kind
		}
	}
	// Results return to the host.
	for _, o := range e.Parent.Outputs() {
		if producerKind[o] == device.GPU {
			rep.TransferBytes += e.Parent.DataSize(o)
		}
	}
	return rep, nil
}
