package runtime

import (
	"strings"
	"testing"

	"duet/internal/device"
)

func TestUtilizationSplitPlacementOverlaps(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Placement{device.CPU, device.GPU, device.CPU}, false)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if u.Makespan != res.Latency {
		t.Fatalf("makespan mismatch")
	}
	if u.Overlap <= 0 {
		t.Fatalf("split placement should co-execute, overlap = %v", u.Overlap)
	}
	if u.OverlapFraction() <= 0 || u.OverlapFraction() > 1 {
		t.Fatalf("overlap fraction %v out of range", u.OverlapFraction())
	}
	if u.BusyFraction("cpu0") <= 0 || u.BusyFraction("gpu0") <= 0 {
		t.Fatalf("both devices should be busy: %+v", u.Busy)
	}
	if !strings.Contains(u.String(), "co-execution") {
		t.Fatalf("String format: %s", u.String())
	}
}

func TestUtilizationUniformPlacementNoOverlap(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Uniform(e.NumSubgraphs(), device.CPU), false)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if u.Overlap != 0 {
		t.Fatalf("single-device run reports overlap %v", u.Overlap)
	}
	if u.BusyFraction("gpu0") != 0 {
		t.Fatalf("GPU should be idle")
	}
}

func TestUtilizationEmptyResult(t *testing.T) {
	var r Result
	u := r.Utilization()
	if u.Overlap != 0 || u.OverlapFraction() != 0 || u.BusyFraction("cpu0") != 0 {
		t.Fatalf("empty result should be all zeros: %+v", u)
	}
}
