package runtime

import (
	"strings"
	"testing"

	"duet/internal/device"
)

func TestUtilizationSplitPlacementOverlaps(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Placement{device.CPU, device.GPU, device.CPU}, false)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if u.Makespan != res.Latency {
		t.Fatalf("makespan mismatch")
	}
	if u.Overlap <= 0 {
		t.Fatalf("split placement should co-execute, overlap = %v", u.Overlap)
	}
	if u.OverlapFraction() <= 0 || u.OverlapFraction() > 1 {
		t.Fatalf("overlap fraction %v out of range", u.OverlapFraction())
	}
	if u.BusyFraction("cpu0") <= 0 || u.BusyFraction("gpu0") <= 0 {
		t.Fatalf("both devices should be busy: %+v", u.Busy)
	}
	if !strings.Contains(u.String(), "co-execution") {
		t.Fatalf("String format: %s", u.String())
	}
}

func TestUtilizationUniformPlacementNoOverlap(t *testing.T) {
	p, _ := branchy(t)
	e := newEngine(t, p, 0)
	res, err := e.Run(nil, Uniform(e.NumSubgraphs(), device.CPU), false)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if u.Overlap != 0 {
		t.Fatalf("single-device run reports overlap %v", u.Overlap)
	}
	if u.BusyFraction("gpu0") != 0 {
		t.Fatalf("GPU should be idle")
	}
}

// TestUtilizationLinkBusyCapped is the regression for BusyFraction > 1.0:
// concurrent transfers overlap on the interconnect track (Run issues
// boundary transfers as values become available, without serialising the
// link), and summing their durations used to exceed the makespan.
func TestUtilizationLinkBusyCapped(t *testing.T) {
	r := Result{
		Latency: 10,
		Timeline: []Span{
			{Label: "xfer:cpu→gpu:a", Device: "pcie", Start: 0, End: 8},
			{Label: "xfer:cpu→gpu:b", Device: "pcie", Start: 1, End: 9},
			{Label: "xfer:gpu→cpu:c", Device: "pcie", Start: 2, End: 7},
		},
	}
	u := r.Utilization()
	if got := u.Busy["pcie"]; got != 9 {
		t.Fatalf("link busy = %v, want union 9", got)
	}
	if f := u.BusyFraction("pcie"); f > 1 {
		t.Fatalf("link busy fraction %v exceeds 1.0", f)
	}
	if u.Overlap != 0 {
		t.Fatalf("transfers must not count as compute overlap, got %v", u.Overlap)
	}
}

// TestUtilizationSameTrackConcurrencyNotOverlap: RunConcurrent's processor
// sharing produces overlapping spans on a single device; that is not
// cross-device co-execution and must not inflate Overlap.
func TestUtilizationSameTrackConcurrencyNotOverlap(t *testing.T) {
	r := Result{
		Latency: 10,
		Timeline: []Span{
			{Label: "sub_0", Device: "cpu0", Start: 0, End: 6},
			{Label: "sub_1", Device: "cpu0", Start: 2, End: 8},
		},
	}
	u := r.Utilization()
	if u.Overlap != 0 {
		t.Fatalf("same-device sharing reported as co-execution: %v", u.Overlap)
	}
	if got := u.Busy["cpu0"]; got != 8 {
		t.Fatalf("cpu busy = %v, want union 8", got)
	}

	// With a second device active the overlap is exactly the cross-device
	// intersection, regardless of the intra-device span structure.
	r.Timeline = append(r.Timeline, Span{Label: "sub_2", Device: "gpu0", Start: 4, End: 10})
	u = r.Utilization()
	if u.Overlap != 4 {
		t.Fatalf("cross-device overlap = %v, want 4 ([4,8])", u.Overlap)
	}
}

// TestUtilizationZeroWidthSpans: zero-width spans (Start==End, e.g. an
// instantaneous probe) occupy no time and must not perturb busy or the
// overlap sweep.
func TestUtilizationZeroWidthSpans(t *testing.T) {
	r := Result{
		Latency: 10,
		Timeline: []Span{
			{Label: "sub_0", Device: "cpu0", Start: 0, End: 10},
			{Label: "probe", Device: "gpu0", Start: 5, End: 5},
			{Label: "probe2", Device: "gpu0", Start: 0, End: 0},
		},
	}
	u := r.Utilization()
	if u.Overlap != 0 {
		t.Fatalf("zero-width spans created overlap: %v", u.Overlap)
	}
	if got := u.Busy["gpu0"]; got != 0 {
		t.Fatalf("zero-width spans created busy time: %v", got)
	}
	if got := u.Busy["cpu0"]; got != 10 {
		t.Fatalf("cpu busy = %v", got)
	}
}

// TestUtilizationExactTies: abutting open/close events at the same instant
// must not create or destroy overlap.
func TestUtilizationExactTies(t *testing.T) {
	r := Result{
		Latency: 12,
		Timeline: []Span{
			// CPU busy back-to-back; GPU takes over exactly at t=6.
			{Label: "a", Device: "cpu0", Start: 0, End: 3},
			{Label: "b", Device: "cpu0", Start: 3, End: 6},
			{Label: "c", Device: "gpu0", Start: 6, End: 12},
		},
	}
	u := r.Utilization()
	if u.Overlap != 0 {
		t.Fatalf("hand-off at an exact tie reported overlap %v", u.Overlap)
	}
	// Identical windows on both devices: overlap is the full window.
	r.Timeline = []Span{
		{Label: "a", Device: "cpu0", Start: 2, End: 9},
		{Label: "b", Device: "gpu0", Start: 2, End: 9},
	}
	u = r.Utilization()
	if u.Overlap != 7 {
		t.Fatalf("identical windows overlap = %v, want 7", u.Overlap)
	}
}

// TestUtilizationFaultedTransferNotCompute: a failed transfer attempt
// (label fault:<cause>:xfer:...) occupies the link, not a compute track.
func TestUtilizationFaultedTransferNotCompute(t *testing.T) {
	r := Result{
		Latency: 10,
		Timeline: []Span{
			{Label: "sub_0", Device: "cpu0", Start: 0, End: 10},
			{Label: "fault:transfer:xfer:cpu→gpu:x", Device: "pcie", Start: 1, End: 4},
		},
	}
	u := r.Utilization()
	if u.Overlap != 0 {
		t.Fatalf("faulted transfer counted as compute overlap: %v", u.Overlap)
	}
	if got := u.Busy["pcie"]; got != 3 {
		t.Fatalf("faulted transfer busy = %v, want 3", got)
	}
}

func TestUtilizationEmptyResult(t *testing.T) {
	var r Result
	u := r.Utilization()
	if u.Overlap != 0 || u.OverlapFraction() != 0 || u.BusyFraction("cpu0") != 0 {
		t.Fatalf("empty result should be all zeros: %+v", u)
	}
}
