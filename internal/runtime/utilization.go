package runtime

import (
	"fmt"
	"sort"
	"strings"

	"duet/internal/vclock"
)

// Utilization summarises how a run used the platform: per-track busy time
// and the fraction of the makespan during which the CPU and GPU computed
// concurrently — the overlap DUET exists to create.
type Utilization struct {
	// Busy maps each track (device or link name) to its total busy time.
	Busy map[string]vclock.Seconds
	// Makespan is the run's end-to-end latency.
	Makespan vclock.Seconds
	// Overlap is the total time during which two or more compute tracks
	// were simultaneously busy.
	Overlap vclock.Seconds
}

// BusyFraction returns a track's busy share of the makespan.
func (u Utilization) BusyFraction(track string) float64 {
	if u.Makespan <= 0 {
		return 0
	}
	return u.Busy[track] / u.Makespan
}

// OverlapFraction returns the co-execution share of the makespan.
func (u Utilization) OverlapFraction() float64 {
	if u.Makespan <= 0 {
		return 0
	}
	return u.Overlap / u.Makespan
}

// String renders the utilization summary.
func (u Utilization) String() string {
	tracks := make([]string, 0, len(u.Busy))
	for t := range u.Busy {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	var b strings.Builder
	for i, t := range tracks {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.0f%%", t, u.BusyFraction(t)*100)
	}
	fmt.Fprintf(&b, "; co-execution %.0f%% of %.3fms", u.OverlapFraction()*100, u.Makespan*1e3)
	return b.String()
}

// interval is a half-open busy window on one track.
type interval struct {
	start, end vclock.Seconds
}

// mergeIntervals unions possibly overlapping intervals into disjoint ones,
// dropping zero-width entries. The input slice is sorted in place.
func mergeIntervals(ivs []interval) []interval {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	merged := ivs[:0]
	for _, iv := range ivs {
		if iv.end <= iv.start {
			continue // zero-width (or malformed) spans occupy no time
		}
		if n := len(merged); n > 0 && iv.start <= merged[n-1].end {
			if iv.end > merged[n-1].end {
				merged[n-1].end = iv.end
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// Utilization analyses the run's timeline. Transfer spans (including
// faulted transfer attempts) count toward their link track's busy time but
// not toward compute overlap. Per-track busy time is the union of the
// track's spans, not their sum: concurrent transfers on the interconnect
// and processor-shared subgraphs in RunConcurrent overlap within one
// track, and double-counting them would report busy fractions above 1.
func (r *Result) Utilization() Utilization {
	u := Utilization{Busy: map[string]vclock.Seconds{}, Makespan: r.Latency}
	byTrack := map[string][]interval{}
	compute := map[string][]interval{}
	for _, s := range r.Timeline {
		byTrack[s.Device] = append(byTrack[s.Device], interval{s.Start, s.End})
		if strings.Contains(s.Label, "xfer:") {
			continue
		}
		compute[s.Device] = append(compute[s.Device], interval{s.Start, s.End})
	}
	for track, ivs := range byTrack {
		busy := vclock.Seconds(0)
		for _, iv := range mergeIntervals(ivs) {
			busy += iv.end - iv.start
		}
		u.Busy[track] = busy
	}

	// Overlap sweep over the merged per-track compute intervals: each track
	// contributes depth ≤ 1, so only genuine cross-device co-execution
	// counts — not two subgraphs sharing one device.
	type event struct {
		t     vclock.Seconds
		delta int
	}
	var events []event
	for _, ivs := range compute {
		for _, iv := range mergeIntervals(ivs) {
			events = append(events, event{iv.start, +1}, event{iv.end, -1})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // close before open at ties
	})
	depth := 0
	var last vclock.Seconds
	for _, ev := range events {
		if depth >= 2 {
			u.Overlap += ev.t - last
		}
		depth += ev.delta
		last = ev.t
	}
	return u
}
