package runtime

import (
	"fmt"
	"sort"
	"strings"

	"duet/internal/vclock"
)

// Utilization summarises how a run used the platform: per-track busy time
// and the fraction of the makespan during which the CPU and GPU computed
// concurrently — the overlap DUET exists to create.
type Utilization struct {
	// Busy maps each track (device or link name) to its total busy time.
	Busy map[string]vclock.Seconds
	// Makespan is the run's end-to-end latency.
	Makespan vclock.Seconds
	// Overlap is the total time during which two or more compute tracks
	// were simultaneously busy.
	Overlap vclock.Seconds
}

// BusyFraction returns a track's busy share of the makespan.
func (u Utilization) BusyFraction(track string) float64 {
	if u.Makespan <= 0 {
		return 0
	}
	return u.Busy[track] / u.Makespan
}

// OverlapFraction returns the co-execution share of the makespan.
func (u Utilization) OverlapFraction() float64 {
	if u.Makespan <= 0 {
		return 0
	}
	return u.Overlap / u.Makespan
}

// String renders the utilization summary.
func (u Utilization) String() string {
	tracks := make([]string, 0, len(u.Busy))
	for t := range u.Busy {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	var b strings.Builder
	for i, t := range tracks {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.0f%%", t, u.BusyFraction(t)*100)
	}
	fmt.Fprintf(&b, "; co-execution %.0f%% of %.3fms", u.OverlapFraction()*100, u.Makespan*1e3)
	return b.String()
}

// Utilization analyses the run's timeline. Transfer spans count toward
// their link track's busy time but not toward compute overlap.
func (r *Result) Utilization() Utilization {
	u := Utilization{Busy: map[string]vclock.Seconds{}, Makespan: r.Latency}
	type event struct {
		t     vclock.Seconds
		delta int
	}
	var events []event
	for _, s := range r.Timeline {
		u.Busy[s.Device] += s.End - s.Start
		if strings.HasPrefix(s.Label, "xfer:") {
			continue
		}
		events = append(events, event{s.Start, +1}, event{s.End, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // close before open at ties
	})
	depth := 0
	var last vclock.Seconds
	for _, ev := range events {
		if depth >= 2 {
			u.Overlap += ev.t - last
		}
		depth += ev.delta
		last = ev.t
	}
	return u
}
