package compiler

import (
	"math"
	"math/rand"
	"testing"

	"duet/internal/graph"
	"duet/internal/tensor"
)

// fuseLower compiles g with only fusion enabled and returns the kernel that
// publishes the graph's (single) output.
func fuseLower(t *testing.T, g *graph.Graph) *Kernel {
	t.Helper()
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	kernels := Fuse(g, true)
	out := g.Outputs()[0]
	for i := range kernels {
		if kernels[i].Output() == out {
			return &kernels[i]
		}
	}
	t.Fatalf("no kernel publishes the graph output")
	return nil
}

func denseBase(rng *rand.Rand, withBias bool) (*graph.Graph, graph.NodeID) {
	g := graph.New("fl")
	x := g.AddInput("x", 2, 8)
	w := g.AddConst("w", tensor.Rand(rng, 0.5, 6, 8))
	ins := []graph.NodeID{x, w}
	if withBias {
		ins = append(ins, g.AddConst("b", tensor.Rand(rng, 0.5, 6)))
	}
	d := g.Add("dense", "d", nil, ins...)
	return g, d
}

func TestFusedLinearLowering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	t.Run("dense_alone", func(t *testing.T) {
		g, d := denseBase(rng, false)
		g.SetOutputs(d)
		k := fuseLower(t, g)
		f := k.Fused
		if f == nil || f.HasBias || f.Ep != tensor.EpNone {
			t.Fatalf("lowering = %+v, want biasless EpNone", f)
		}
	})

	t.Run("dense_own_bias", func(t *testing.T) {
		g, d := denseBase(rng, true)
		g.SetOutputs(d)
		k := fuseLower(t, g)
		f := k.Fused
		if f == nil || !f.HasBias || f.Ep != tensor.EpNone {
			t.Fatalf("lowering = %+v, want bias from dense operand", f)
		}
	})

	t.Run("dense_add_folds_bias", func(t *testing.T) {
		g, d := denseBase(rng, false)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 6))
		a := g.Add("add", "a", nil, d, b)
		g.SetOutputs(a)
		k := fuseLower(t, g)
		f := k.Fused
		if f == nil || !f.HasBias || f.Bias != b || f.Ep != tensor.EpNone {
			t.Fatalf("lowering = %+v, want folded bias %d", f, b)
		}
	})

	t.Run("dense_relu", func(t *testing.T) {
		g, d := denseBase(rng, true)
		r := g.Add("relu", "r", nil, d)
		g.SetOutputs(r)
		k := fuseLower(t, g)
		f := k.Fused
		if f == nil || !f.HasBias || f.Ep != tensor.EpReLU {
			t.Fatalf("lowering = %+v, want bias + EpReLU", f)
		}
	})

	t.Run("dense_add_sigmoid", func(t *testing.T) {
		g, d := denseBase(rng, false)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 6))
		a := g.Add("add", "a", nil, d, b)
		s := g.Add("sigmoid", "s", nil, a)
		g.SetOutputs(s)
		k := fuseLower(t, g)
		f := k.Fused
		if f == nil || !f.HasBias || f.Bias != b || f.Ep != tensor.EpSigmoid {
			t.Fatalf("lowering = %+v, want folded bias + EpSigmoid", f)
		}
	})

	// Rejections: each of these must keep generic op-by-op dispatch.

	t.Run("reject_double_bias", func(t *testing.T) {
		g, d := denseBase(rng, true)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 6))
		a := g.Add("add", "a", nil, d, b)
		g.SetOutputs(a)
		if k := fuseLower(t, g); k.Fused != nil {
			t.Fatalf("dense-with-bias + add lowered to %+v, want nil", k.Fused)
		}
	})

	t.Run("reject_swapped_add_operands", func(t *testing.T) {
		g, d := denseBase(rng, false)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 2, 6))
		a := g.Add("add", "a", nil, b, d) // add(other, tail): not canonical order
		g.SetOutputs(a)
		if k := fuseLower(t, g); k.Fused != nil {
			t.Fatalf("swapped add lowered to %+v, want nil", k.Fused)
		}
	})

	t.Run("reject_scalar_bias", func(t *testing.T) {
		g, d := denseBase(rng, false)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 1)) // broadcasts, width ≠ 6
		a := g.Add("add", "a", nil, d, b)
		g.SetOutputs(a)
		if k := fuseLower(t, g); k.Fused != nil {
			t.Fatalf("scalar-broadcast add lowered to %+v, want nil", k.Fused)
		}
	})

	t.Run("reject_unsupported_activation", func(t *testing.T) {
		g, d := denseBase(rng, true)
		r := g.Add("tanh", "r", nil, d)
		g.SetOutputs(r)
		if k := fuseLower(t, g); k.Fused != nil {
			t.Fatalf("dense+tanh lowered to %+v, want nil", k.Fused)
		}
	})

	t.Run("reject_trailing_op_after_activation", func(t *testing.T) {
		g, d := denseBase(rng, true)
		r := g.Add("relu", "r", nil, d)
		s := g.Add("exp", "s", nil, r)
		g.SetOutputs(s)
		if k := fuseLower(t, g); k.Fused != nil {
			t.Fatalf("dense+relu+exp lowered to %+v, want nil", k.Fused)
		}
	})

	t.Run("reject_non_dense_leader", func(t *testing.T) {
		g := graph.New("fl")
		x := g.AddInput("x", 2, 8)
		r := g.Add("relu", "r", nil, x)
		g.SetOutputs(r)
		if k := fuseLower(t, g); k.Fused != nil {
			t.Fatalf("relu leader lowered to %+v, want nil", k.Fused)
		}
	})
}

// TestExecuteArenaMatchesExecute runs the same module through the plain and
// arena executors and demands bit-identical outputs — the arena path (fused
// epilogues, buffer recycling, early release) must not change a single ULP.
func TestExecuteArenaMatchesExecute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.New("mix")
	x := g.AddInput("x", 3, 8)
	w1 := g.AddConst("w1", tensor.Rand(rng, 0.5, 16, 8))
	b1 := g.AddConst("b1", tensor.Rand(rng, 0.5, 16))
	d1 := g.Add("dense", "d1", nil, x, w1)
	a1 := g.Add("add", "a1", nil, d1, b1)
	r1 := g.Add("relu", "r1", nil, a1)
	w2 := g.AddConst("w2", tensor.Rand(rng, 0.5, 4, 16))
	b2 := g.AddConst("b2", tensor.Rand(rng, 0.5, 4))
	d2 := g.Add("dense", "d2", nil, r1, w2, b2)
	s2 := g.Add("sigmoid", "s2", nil, d2)
	fl := g.Add("flatten", "fl", nil, s2)
	sm := g.Add("softmax", "sm", nil, fl)
	g.SetOutputs(sm, r1) // r1 doubles as a declared output: must survive release
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	m, err := Compile(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 3, 8)}
	want, err := m.Execute(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ar := tensor.NewArena()
	for round := 0; round < 3; round++ { // round 2+ exercises recycled buffers
		got, err := m.ExecuteArena(inputs, ar)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d outputs, want %d", round, len(got), len(want))
		}
		for i := range want {
			wd, gd := want[i].Data(), got[i].Data()
			for j := range wd {
				if math.Float32bits(wd[j]) != math.Float32bits(gd[j]) {
					t.Fatalf("round %d: output %d element %d = %v, want %v (bit-exact)",
						round, i, j, gd[j], wd[j])
				}
			}
		}
	}
}
