package compiler

import (
	"math"
	"math/rand"
	"testing"

	"duet/internal/graph"
	"duet/internal/tensor"
)

// fuseLower compiles g at the given fusion level and returns the kernel
// that publishes the graph's (single) output.
func fuseLower(t *testing.T, g *graph.Graph, level FusionLevel) *Kernel {
	t.Helper()
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	kernels := Fuse(g, level)
	out := g.Outputs()[0]
	for i := range kernels {
		if kernels[i].Output() == out {
			return &kernels[i]
		}
	}
	t.Fatalf("no kernel publishes the graph output")
	return nil
}

func denseBase(rng *rand.Rand, withBias bool) (*graph.Graph, graph.NodeID) {
	g := graph.New("fl")
	x := g.AddInput("x", 2, 8)
	w := g.AddConst("w", tensor.Rand(rng, 0.5, 6, 8))
	ins := []graph.NodeID{x, w}
	if withBias {
		ins = append(ins, g.AddConst("b", tensor.Rand(rng, 0.5, 6)))
	}
	d := g.Add("dense", "d", nil, ins...)
	return g, d
}

// tapeOps extracts the opcode sequence of a fused kernel's program.
func tapeOps(f *FusedGroup) []tensor.ChainOp {
	if f == nil {
		return nil
	}
	ops := make([]tensor.ChainOp, 0, f.Prog.Len())
	for _, in := range f.Prog.Instrs() {
		ops = append(ops, in.Op)
	}
	return ops
}

func opsEqual(got, want []tensor.ChainOp) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestLegacyLinearLowering pins the legacy fusion level to the epilogue
// patterns the old fixed-function GEMM kernel supported, now expressed as
// single-instruction tapes.
func TestLegacyLinearLowering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	t.Run("dense_alone", func(t *testing.T) {
		g, d := denseBase(rng, false)
		g.SetOutputs(d)
		k := fuseLower(t, g, FusionLegacy)
		f := k.Fused
		if f == nil || f.Prog.Len() != 0 || len(f.Args) != 0 {
			t.Fatalf("lowering = %+v, want empty tape", f)
		}
	})

	t.Run("dense_own_bias", func(t *testing.T) {
		g, d := denseBase(rng, true)
		g.SetOutputs(d)
		k := fuseLower(t, g, FusionLegacy)
		f := k.Fused
		if f == nil || len(f.LeadIns) != 3 || f.Prog.Len() != 0 {
			t.Fatalf("lowering = %+v, want bias from dense operand, empty tape", f)
		}
	})

	t.Run("dense_add_folds_bias", func(t *testing.T) {
		g, d := denseBase(rng, false)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 6))
		a := g.Add("add", "a", nil, d, b)
		g.SetOutputs(a)
		k := fuseLower(t, g, FusionLegacy)
		f := k.Fused
		if f == nil || !opsEqual(tapeOps(f), []tensor.ChainOp{tensor.ChainAdd}) ||
			len(f.Args) != 1 || f.Args[0] != b {
			t.Fatalf("lowering = %+v, want single add against arg %d", f, b)
		}
	})

	t.Run("dense_relu", func(t *testing.T) {
		g, d := denseBase(rng, true)
		r := g.Add("relu", "r", nil, d)
		g.SetOutputs(r)
		k := fuseLower(t, g, FusionLegacy)
		f := k.Fused
		if f == nil || !opsEqual(tapeOps(f), []tensor.ChainOp{tensor.ChainReLU}) {
			t.Fatalf("lowering = %+v, want bias + relu tape", f)
		}
	})

	t.Run("dense_add_sigmoid", func(t *testing.T) {
		g, d := denseBase(rng, false)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 6))
		a := g.Add("add", "a", nil, d, b)
		s := g.Add("sigmoid", "s", nil, a)
		g.SetOutputs(s)
		k := fuseLower(t, g, FusionLegacy)
		f := k.Fused
		if f == nil || !opsEqual(tapeOps(f), []tensor.ChainOp{tensor.ChainAdd, tensor.ChainSigmoid}) {
			t.Fatalf("lowering = %+v, want add+sigmoid tape", f)
		}
	})

	// Legacy rejections: each of these must keep generic op-by-op dispatch
	// at FusionLegacy — and (where noted) lower at FusionUnconstrained.

	t.Run("reject_double_bias", func(t *testing.T) {
		g, d := denseBase(rng, true)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 6))
		a := g.Add("add", "a", nil, d, b)
		g.SetOutputs(a)
		if k := fuseLower(t, g, FusionLegacy); k.Fused != nil {
			t.Fatalf("dense-with-bias + add lowered to %+v, want nil", k.Fused)
		}
		if k := fuseLower(t, g, FusionUnconstrained); k.Fused == nil {
			t.Fatal("unconstrained fusion should lower dense-with-bias + add")
		}
	})

	t.Run("reject_swapped_add_operands", func(t *testing.T) {
		g, d := denseBase(rng, false)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 2, 6))
		a := g.Add("add", "a", nil, b, d) // add(other, tail): not canonical order
		g.SetOutputs(a)
		if k := fuseLower(t, g, FusionLegacy); k.Fused != nil {
			t.Fatalf("swapped add lowered to %+v, want nil", k.Fused)
		}
		k := fuseLower(t, g, FusionUnconstrained)
		f := k.Fused
		if f == nil || f.Prog.Len() != 1 || !f.Prog.Instrs()[0].Rev {
			t.Fatalf("unconstrained lowering of swapped add = %+v, want Rev instr", f)
		}
	})

	t.Run("reject_scalar_bias", func(t *testing.T) {
		g, d := denseBase(rng, false)
		b := g.AddConst("b2", tensor.Rand(rng, 0.5, 1)) // broadcasts, width ≠ 6
		a := g.Add("add", "a", nil, d, b)
		g.SetOutputs(a)
		if k := fuseLower(t, g, FusionLegacy); k.Fused != nil {
			t.Fatalf("scalar-broadcast add lowered to %+v, want nil", k.Fused)
		}
		if k := fuseLower(t, g, FusionUnconstrained); k.Fused == nil {
			t.Fatal("unconstrained fusion should lower a scalar-broadcast add")
		}
	})

	t.Run("reject_unsupported_activation", func(t *testing.T) {
		g, d := denseBase(rng, true)
		r := g.Add("tanh", "r", nil, d)
		g.SetOutputs(r)
		if k := fuseLower(t, g, FusionLegacy); k.Fused != nil {
			t.Fatalf("dense+tanh lowered to %+v, want nil", k.Fused)
		}
		k := fuseLower(t, g, FusionUnconstrained)
		if !opsEqual(tapeOps(k.Fused), []tensor.ChainOp{tensor.ChainTanh}) {
			t.Fatalf("unconstrained dense+tanh = %+v, want tanh tape", k.Fused)
		}
	})

	t.Run("reject_trailing_op_after_activation", func(t *testing.T) {
		g, d := denseBase(rng, true)
		r := g.Add("relu", "r", nil, d)
		s := g.Add("exp", "s", nil, r)
		g.SetOutputs(s)
		if k := fuseLower(t, g, FusionLegacy); k.Fused != nil {
			t.Fatalf("dense+relu+exp lowered to %+v, want nil", k.Fused)
		}
		k := fuseLower(t, g, FusionUnconstrained)
		if !opsEqual(tapeOps(k.Fused), []tensor.ChainOp{tensor.ChainReLU, tensor.ChainExp}) {
			t.Fatalf("unconstrained dense+relu+exp = %+v, want relu+exp tape", k.Fused)
		}
	})

	t.Run("reject_non_dense_leader", func(t *testing.T) {
		g := graph.New("fl")
		x := g.AddInput("x", 2, 8)
		r := g.Add("relu", "r", nil, x)
		e := g.Add("exp", "e", nil, r)
		g.SetOutputs(e)
		if k := fuseLower(t, g, FusionLegacy); k.Fused != nil {
			t.Fatalf("relu leader lowered to %+v, want nil", k.Fused)
		}
		// Unconstrained fusion lowers standalone elementwise chains too.
		k := fuseLower(t, g, FusionUnconstrained)
		if !opsEqual(tapeOps(k.Fused), []tensor.ChainOp{tensor.ChainExp}) {
			t.Fatalf("standalone chain = %+v, want exp tape behind relu lead", k.Fused)
		}
	})
}

// unconstrainedOutputs compiles g at each fusion level and demands
// bit-identical outputs, returning the unconstrained module for further
// assertions.
func unconstrainedOutputs(t *testing.T, g *graph.Graph, inputs map[string]*tensor.Tensor) *Module {
	t.Helper()
	var want []*tensor.Tensor
	var unc *Module
	for _, level := range []FusionLevel{FusionOff, FusionLegacy, FusionUnconstrained} {
		opt := DefaultOptions()
		opt.Fusion = level
		m, err := Compile(g, opt)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		plain, err := m.Execute(inputs)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		ar := tensor.NewArena()
		for round := 0; round < 2; round++ {
			got, err := m.ExecuteArena(inputs, ar)
			if err != nil {
				t.Fatalf("%v round %d: %v", level, round, err)
			}
			for i := range got {
				assertBitEqual(t, got[i], plain[i], "%v round %d output %d: arena vs plain", level, round, i)
			}
		}
		if want == nil {
			want = plain
		} else {
			for i := range plain {
				assertBitEqual(t, plain[i], want[i], "%v output %d: vs FusionOff", level, i)
			}
		}
		if level == FusionUnconstrained {
			unc = m
		}
	}
	return unc
}

func assertBitEqual(t *testing.T, got, want *tensor.Tensor, format string, args ...any) {
	t.Helper()
	gd, wd := got.Data(), want.Data()
	if len(gd) != len(wd) {
		t.Fatalf(format+": size %d vs %d", append(args, len(gd), len(wd))...)
	}
	for j := range wd {
		if math.Float32bits(gd[j]) != math.Float32bits(wd[j]) {
			t.Fatalf(format+": element %d = %v, want %v (bit-exact)", append(args, j, gd[j], wd[j])...)
		}
	}
}

// TestUnconstrainedResidualFork exercises the tape's register path: a
// dense feeds relu and sigmoid branches that re-join through an add, all
// inside one kernel.
func TestUnconstrainedResidualFork(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.New("fork")
	x := g.AddInput("x", 3, 8)
	w := g.AddConst("w", tensor.Rand(rng, 0.5, 6, 8))
	d := g.Add("dense", "d", nil, x, w)
	r := g.Add("relu", "r", nil, d)
	s := g.Add("sigmoid", "s", nil, d)
	a := g.Add("add", "a", nil, r, s)
	g.SetOutputs(a)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	m := unconstrainedOutputs(t, g, map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 3, 8)})
	if len(m.Kernels) != 1 || m.Kernels[0].Fused == nil {
		t.Fatalf("fork should fuse to one kernel: %d kernels, fused=%v", len(m.Kernels), m.Kernels[0].Fused != nil)
	}
	f := m.Kernels[0].Fused
	if f.Prog.NumRegs() == 0 && f.RecomputeFLOPs == 0 {
		t.Fatalf("fork lowering used neither registers nor recompute: %+v", f)
	}
	if len(f.Emits) != 0 {
		t.Fatalf("private fork intermediates must not be emitted: %v", f.Emits)
	}
}

// TestUnconstrainedSelfBinary covers the SrcCur path: mul(v, v) squares
// the stream without any register or argument.
func TestUnconstrainedSelfBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := graph.New("sq")
	x := g.AddInput("x", 4, 5)
	r := g.Add("relu", "r", nil, x)
	q := g.Add("mul", "q", nil, r, r)
	g.SetOutputs(q)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	m := unconstrainedOutputs(t, g, map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 4, 5)})
	f := m.Kernels[0].Fused
	if f == nil || f.Prog.Len() != 1 || f.Prog.Instrs()[0].Src != tensor.SrcCur {
		t.Fatalf("self-binary lowering = %+v, want one SrcCur mul", f)
	}
}

// TestUnconstrainedEmitsSharedIntermediate: a group value read by a kernel
// outside the group must be materialized exactly once via an Emit slot and
// released only after its outside consumer has run.
func TestUnconstrainedEmitsSharedIntermediate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.New("emit")
	x := g.AddInput("x", 3, 8)
	w := g.AddConst("w", tensor.Rand(rng, 0.5, 8, 8))
	d := g.Add("dense", "d", nil, x, w)
	r := g.Add("relu", "r", nil, d)
	t2 := g.Add("tanh", "t2", nil, r)
	// Outside consumer of r: a second dense that cannot join the group.
	w2 := g.AddConst("w2", tensor.Rand(rng, 0.5, 4, 8))
	d2 := g.Add("dense", "d2", nil, r, w2)
	s := g.Add("sigmoid", "s", nil, d2)
	g.SetOutputs(t2, s)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	m := unconstrainedOutputs(t, g, map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 3, 8)})
	var emitted bool
	for i := range m.Kernels {
		if f := m.Kernels[i].Fused; f != nil {
			for _, e := range f.Emits {
				if e == r {
					emitted = true
				}
			}
		}
	}
	if !emitted {
		t.Fatal("shared intermediate r must be materialized through an Emit slot")
	}
}

// TestUnconstrainedRecompute drives the recompute-vs-materialize
// arbitration: a cheap producer with one pending use is replayed instead
// of saved when the stream returns to it.
func TestUnconstrainedRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := graph.New("rc")
	x := g.AddInput("x", 3, 6)
	w := g.AddConst("w", tensor.Rand(rng, 0.5, 6, 6))
	kc := g.AddConst("k", tensor.Rand(rng, 0.5, 6))
	d := g.Add("dense", "d", nil, x, w)
	c := g.Add("mul", "c", nil, d, d) // cheap square of the lead
	t2 := g.Add("tanh", "t2", nil, d) // stream must come back through d
	fa := g.Add("add", "f", nil, c, kc)
	z := g.Add("maximum", "z", nil, fa, t2)
	g.SetOutputs(z)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	m := unconstrainedOutputs(t, g, map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 3, 6)})
	f := m.Kernels[0].Fused
	if f == nil {
		t.Fatal("recompute graph should lower to one fused kernel")
	}
	if f.RecomputeFLOPs == 0 || f.RecomputeBytes == 0 {
		t.Fatalf("expected the cheap mul to be recomputed: %+v", f)
	}
}

// TestUnconstrainedSpillFallsBack builds a group needing more live values
// than maxChainRegs and checks it degrades to op-by-op dispatch (Fused ==
// nil) with outputs still correct.
func TestUnconstrainedSpillFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	g := graph.New("spill")
	x := g.AddInput("x", 2, 4)
	// Build maxChainRegs+2 expensive branches off the same root, then fold
	// them together pairwise; every branch value must be live at the join.
	root := g.Add("sigmoid", "root", nil, x)
	var branches []graph.NodeID
	for i := 0; i < maxChainRegs+2; i++ {
		branches = append(branches, g.Add("tanh", mustName("b", i), nil, root))
	}
	acc := branches[0]
	for i := 1; i < len(branches); i++ {
		acc = g.Add("add", mustName("acc", i), nil, acc, branches[i])
	}
	g.SetOutputs(acc)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	m := unconstrainedOutputs(t, g, map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 2, 4)})
	// The whole graph is one group; whether it lowers depends on register
	// pressure. What matters: execution stays correct (checked above) and
	// an unlowered kernel reports per-op launches, not one.
	if len(m.Kernels) != 1 {
		t.Fatalf("expected a single group, got %d kernels", len(m.Kernels))
	}
}

func mustName(prefix string, i int) string {
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
