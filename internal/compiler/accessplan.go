package compiler

import "duet/internal/graph"

// AccessKind classifies one kernel-plan value access. The happens-before
// verifier (internal/hb) consumes these instead of re-parsing kernel plans:
// each kind maps onto one of the access classes the race detector reasons
// about — producer writes, consumer reads, the fused lead's in-place Into
// write, epilogue-program emits, and the release-plan consumer edges whose
// settlement frees an arena slot.
type AccessKind int

const (
	// AccessRead is a kernel reading the value as an operand.
	AccessRead AccessKind = iota
	// AccessWrite is a kernel materializing the value through its native
	// (op-by-op) execution path.
	AccessWrite
	// AccessInPlace is the fused lead's in-place write: the group output
	// buffer doubles as the epilogue program's stream, so the launch both
	// produces and rewrites it within one step.
	AccessInPlace
	// AccessEmit is an epilogue-program emit slot materializing a group
	// intermediate into a fresh arena buffer.
	AccessEmit
	// AccessConsume is one release-plan consumer edge settled at this step;
	// when a value's settled consumes reach its use count, ExecuteArena
	// returns its buffer to the arena (the slot becomes reusable).
	AccessConsume
)

// String names the access kind for findings and traces.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessInPlace:
		return "in-place-write"
	case AccessEmit:
		return "emit"
	case AccessConsume:
		return "consume"
	}
	return "unknown"
}

// Access is one value access of the module's kernel plan: at execution step
// Step (the kernel index), the plan touches module-graph value Node as Kind.
type Access struct {
	Step int
	Node graph.NodeID
	Kind AccessKind
}

// Accesses returns the kernel plan's value accesses in execution order — the
// module metadata the happens-before builder consumes. The list mirrors what
// ExecuteArena actually does, kernel by kernel: unlowered kernels read each
// member's operands, write the member, and settle the operand consumer
// edges; fused kernels read the lead operands and external tape args, write
// the group output in place, emit the materialized intermediates, and settle
// their recorded Consumes list. Reads precede writes precede consumes within
// one step, matching the executor's intra-launch order.
func (m *Module) Accesses() []Access {
	var out []Access
	for step := range m.Kernels {
		k := &m.Kernels[step]
		if f := k.Fused; f != nil {
			for _, id := range f.LeadIns {
				out = append(out, Access{step, id, AccessRead})
			}
			for _, id := range f.Args {
				out = append(out, Access{step, id, AccessRead})
			}
			out = append(out, Access{step, k.Output(), AccessInPlace})
			for _, id := range f.Emits {
				out = append(out, Access{step, id, AccessEmit})
			}
			for _, id := range f.Consumes {
				out = append(out, Access{step, id, AccessConsume})
			}
			continue
		}
		for _, id := range k.Nodes {
			n := m.Graph.Node(id)
			for _, in := range n.Inputs {
				out = append(out, Access{step, in, AccessRead})
			}
			out = append(out, Access{step, id, AccessWrite})
			for _, in := range n.Inputs {
				out = append(out, Access{step, in, AccessConsume})
			}
		}
	}
	return out
}
