package compiler

import (
	"math/rand"
	"testing"

	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/ops"
	"duet/internal/tensor"
)

func convGraph(t *testing.T, kernel, stride int) *Module {
	t.Helper()
	g := graph.New("conv")
	x := g.AddInput("x", 1, 16, 56, 56)
	w := g.AddConst("w", tensor.Rand(rand.New(rand.NewSource(1)), 0.1, 32, 16, kernel, kernel))
	c := g.Add("conv2d", "c", graph.Attrs{"stride": stride, "pad": kernel / 2}, x, w)
	r := g.Add("relu", "r", nil, c)
	g.SetOutputs(r)
	m, err := Compile(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTunedCostsImproveOrMatch(t *testing.T) {
	m := convGraph(t, 3, 1)
	for _, dev := range []*device.Device{device.NewCPU(), device.NewGPU()} {
		tuned := TunedCosts(m, dev)
		if len(tuned) != len(m.Kernels) {
			t.Fatalf("tuned count = %d, want %d", len(tuned), len(m.Kernels))
		}
		for i := range tuned {
			raw := dev.KernelTime(m.Kernels[i].Cost)
			opt := dev.KernelTime(tuned[i])
			if opt > raw {
				t.Fatalf("%s kernel %d: tuning made it slower (%v > %v)", dev.Name, i, opt, raw)
			}
		}
	}
}

func TestWinogradAppliesOnlyTo3x3Stride1(t *testing.T) {
	cpu := device.NewCPU()
	eligible := convGraph(t, 3, 1)
	if names := TunedVariants(eligible, cpu); names[0] != "winograd" {
		t.Fatalf("3x3 stride-1 conv should pick winograd on CPU, got %q", names[0])
	}
	for _, m := range []*Module{convGraph(t, 3, 2), convGraph(t, 5, 1)} {
		for _, name := range TunedVariants(m, cpu) {
			if name == "winograd" {
				t.Fatalf("winograd selected for an ineligible conv")
			}
		}
	}
}

func TestRecurrentKernelsGetNoVariants(t *testing.T) {
	g := graph.New("rnn")
	x := g.AddInput("x", 1, 20, 32)
	rng := rand.New(rand.NewSource(2))
	wx := g.AddConst("wx", tensor.Rand(rng, 0.1, 128, 32))
	wh := g.AddConst("wh", tensor.Rand(rng, 0.1, 128, 32))
	b := g.AddConst("b", tensor.Rand(rng, 0.1, 128))
	l := g.Add("lstm", "l", graph.Attrs{"last_only": 1}, x, wx, wh, b)
	g.SetOutputs(l)
	m, err := Compile(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range TunedVariants(m, device.NewGPU()) {
		if name != "default" {
			t.Fatalf("recurrent kernel got variant %q; cross-timestep tuning is out of scope", name)
		}
	}
}

func TestTuningDisabledReturnsRawCosts(t *testing.T) {
	g := graph.New("conv")
	x := g.AddInput("x", 1, 16, 28, 28)
	w := g.AddConst("w", tensor.Rand(rand.New(rand.NewSource(3)), 0.1, 16, 16, 3, 3))
	c := g.Add("conv2d", "c", graph.Attrs{"stride": 1, "pad": 1}, x, w)
	g.SetOutputs(c)
	m, err := Compile(g, Options{Fuse: true}) // Tune off
	if err != nil {
		t.Fatal(err)
	}
	tuned := TunedCosts(m, device.NewGPU())
	for i := range tuned {
		if tuned[i] != m.Kernels[i].Cost {
			t.Fatalf("tuning disabled but costs changed")
		}
	}
	if names := TunedVariants(m, device.NewGPU()); names[0] != "default" {
		t.Fatalf("disabled tuning should report default variants")
	}
}

func TestDevicesCanPickDifferentVariants(t *testing.T) {
	// GEMM tiling: the GPU (parallelism-starved at batch 1) should prefer
	// tile-small more often than the CPU, which prefers the reuse of
	// tile-large. Verify at least that both devices pick a *legal* variant
	// and that selection is deterministic.
	g := graph.New("gemm")
	x := g.AddInput("x", 1, 512)
	w := g.AddConst("w", tensor.Rand(rand.New(rand.NewSource(4)), 0.1, 512, 512))
	d := g.Add("dense", "d", nil, x, w)
	g.SetOutputs(d)
	m, err := Compile(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cpu := TunedVariants(m, device.NewCPU())
	gpu := TunedVariants(m, device.NewGPU())
	legal := map[string]bool{"default": true, "tile-large": true, "tile-small": true}
	if !legal[cpu[0]] || !legal[gpu[0]] {
		t.Fatalf("illegal variants: cpu=%q gpu=%q", cpu[0], gpu[0])
	}
	if cpu2 := TunedVariants(m, device.NewCPU()); cpu2[0] != cpu[0] {
		t.Fatalf("variant selection not deterministic")
	}
}

func TestVariantApply(t *testing.T) {
	v := Variant{Name: "x", FLOPsScale: 0.5, BytesScale: 2, ParallelismScale: 3}
	c := v.Apply(ops.Cost{FLOPs: 100, Bytes: 10, Parallelism: 7, Launches: 2, SeqSteps: 1})
	if c.FLOPs != 50 || c.Bytes != 20 || c.Parallelism != 21 {
		t.Fatalf("Apply wrong: %+v", c)
	}
	if c.Launches != 2 || c.SeqSteps != 1 {
		t.Fatalf("Apply must not change launch structure: %+v", c)
	}
}
