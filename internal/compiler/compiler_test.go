package compiler

import (
	"math/rand"
	"testing"

	"duet/internal/graph"
	"duet/internal/tensor"
)

// mlpGraph builds x -> dense(w1,b1) -> relu -> dense(w2,b2) -> relu -> out.
func mlpGraph(rng *rand.Rand) *graph.Graph {
	g := graph.New("mlp")
	x := g.AddInput("x", 1, 8)
	w1 := g.AddConst("w1", tensor.Rand(rng, 0.5, 16, 8))
	b1 := g.AddConst("b1", tensor.Rand(rng, 0.5, 16))
	w2 := g.AddConst("w2", tensor.Rand(rng, 0.5, 4, 16))
	b2 := g.AddConst("b2", tensor.Rand(rng, 0.5, 4))
	d1 := g.Add("dense", "d1", nil, x, w1, b1)
	r1 := g.Add("relu", "r1", nil, d1)
	d2 := g.Add("dense", "d2", nil, r1, w2, b2)
	r2 := g.Add("relu", "r2", nil, d2)
	g.SetOutputs(r2)
	return g
}

func TestInferShapes(t *testing.T) {
	g := mlpGraph(rand.New(rand.NewSource(1)))
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	if !tensor.ShapeEq(g.NodeByName("d1").Shape, []int{1, 16}) {
		t.Fatalf("d1 shape = %v", g.NodeByName("d1").Shape)
	}
	if !tensor.ShapeEq(g.NodeByName("r2").Shape, []int{1, 4}) {
		t.Fatalf("r2 shape = %v", g.NodeByName("r2").Shape)
	}
}

func TestInferShapesUnknownOp(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 1)
	g.Add("frobnicate", "f", nil, x)
	if err := InferShapes(g); err == nil {
		t.Fatalf("expected unknown-op error")
	}
}

func TestInferShapesMissingInputShape(t *testing.T) {
	g := graph.New("g")
	x := g.Add(graph.OpInput, "x", nil) // bypasses AddInput → no shape
	g.Add("relu", "r", nil, x)
	if err := InferShapes(g); err == nil {
		t.Fatalf("expected missing-shape error")
	}
}

func TestDCEDropsDeadNodes(t *testing.T) {
	g := mlpGraph(rand.New(rand.NewSource(2)))
	dead := g.Add("relu", "dead", nil, g.NodeByName("d1").ID)
	_ = dead
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	out := DCE(g)
	if out.NodeByName("dead") != nil {
		t.Fatalf("DCE kept dead node")
	}
	if out.NodeByName("r2") == nil {
		t.Fatalf("DCE dropped live node")
	}
}

func TestConstantFold(t *testing.T) {
	g := graph.New("g")
	a := g.AddConst("a", tensor.Full(2, 1, 4))
	b := g.AddConst("b", tensor.Full(3, 1, 4))
	s := g.Add("add", "s", nil, a, b)
	x := g.AddInput("x", 1, 4)
	y := g.Add("mul", "y", nil, x, s)
	g.SetOutputs(y)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	folded, err := ConstantFold(g)
	if err != nil {
		t.Fatal(err)
	}
	sn := folded.NodeByName("s")
	if sn == nil || !sn.IsConst() {
		t.Fatalf("add of consts not folded")
	}
	if sn.Value.At(0, 0) != 5 {
		t.Fatalf("folded value = %v, want 5", sn.Value.At(0, 0))
	}
	if !folded.NodeByName("y").IsConst() == false {
		// y depends on a runtime input and must not fold
		t.Fatalf("y must stay an op")
	}
}

func TestCSEMergesDuplicates(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 1, 4)
	r1 := g.Add("relu", "r1", nil, x)
	r2 := g.Add("relu", "r2", nil, x)
	s := g.Add("add", "s", nil, r1, r2)
	g.SetOutputs(s)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	out := CSE(g)
	// One relu should survive; s should consume it twice.
	count := 0
	for _, n := range out.Nodes() {
		if n.Op == "relu" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("CSE left %d relus, want 1", count)
	}
	sn := out.NodeByName("s")
	if sn.Inputs[0] != sn.Inputs[1] {
		t.Fatalf("s inputs not merged: %v", sn.Inputs)
	}
}

func TestCSERespectsAttrs(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 2, 6)
	a := g.Add("reshape", "a", graph.Attrs{"shape": []int{3, 4}}, x)
	b := g.Add("reshape", "b", graph.Attrs{"shape": []int{4, 3}}, x)
	s := g.Add("matmul", "s", nil, a, b)
	g.SetOutputs(s)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	out := CSE(g)
	count := 0
	for _, n := range out.Nodes() {
		if n.Op == "reshape" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("CSE merged reshapes with different attrs")
	}
}

func TestSimplifyAddZero(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 1, 4)
	zero := g.AddConst("zero", tensor.New(4))
	a := g.Add("add", "a", nil, x, zero)
	r := g.Add("relu", "r", nil, a)
	g.SetOutputs(r)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	out := Simplify(g)
	if out.NodeByName("a") != nil {
		t.Fatalf("x+0 not simplified away")
	}
	rn := out.NodeByName("r")
	if !out.Node(rn.Inputs[0]).IsInput() {
		t.Fatalf("relu should consume x directly")
	}
}

func TestSimplifyMulOne(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 1, 4)
	one := g.AddConst("one", tensor.Ones(4))
	mul := g.Add("mul", "m", nil, x, one)
	g.SetOutputs(mul)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	out := Simplify(g)
	if out.NodeByName("m") != nil {
		t.Fatalf("x*1 not simplified")
	}
}

func TestSimplifyIdentityReshape(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 2, 3)
	rs := g.Add("reshape", "rs", graph.Attrs{"shape": []int{2, 3}}, x)
	r := g.Add("relu", "r", nil, rs)
	g.SetOutputs(r)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	out := Simplify(g)
	if out.NodeByName("rs") != nil {
		t.Fatalf("identity reshape survived")
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := mlpGraph(rng)
	x := tensor.Rand(rng, 1, 1, 8)

	plain, err := Compile(mlpCopy(t, g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := Compile(mlpCopy(t, g), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := plain.Execute(map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	b, err := optimized.Execute(map[string]*tensor.Tensor{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(a[0], b[0], 1e-5, 1e-5) {
		t.Fatalf("optimization changed semantics: diff %g", tensor.MaxAbsDiff(a[0], b[0]))
	}
}

// mlpCopy recompiles from a fresh graph to avoid shared-shape aliasing
// between compilations in tests.
func mlpCopy(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	return g
}

func TestFuseReducesKernels(t *testing.T) {
	g := mlpGraph(rand.New(rand.NewSource(4)))
	unfused, err := Compile(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Compile(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if unfused.KernelCount() != 4 {
		t.Fatalf("unfused kernels = %d, want 4", unfused.KernelCount())
	}
	if fused.KernelCount() != 2 {
		t.Fatalf("fused kernels = %d, want 2 (dense+relu ×2)", fused.KernelCount())
	}
	for _, k := range fused.Kernels {
		if len(k.Nodes) != 2 {
			t.Fatalf("fused kernel %s has %d nodes, want 2", k.Name, len(k.Nodes))
		}
	}
}

func TestFuseStopsAtFanOut(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 1, 8)
	w := g.AddConst("w", tensor.Ones(8, 8))
	d := g.Add("dense", "d", nil, x, w)
	r1 := g.Add("relu", "r1", nil, d)
	r2 := g.Add("sigmoid", "r2", nil, d) // second consumer of d
	s := g.Add("add", "s", nil, r1, r2)
	g.SetOutputs(s)
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	kernels := Fuse(g, FusionLegacy)
	// Under legacy fusion d cannot absorb anything (two consumers); r1 and
	// r2 can't merge with each other; s's operands are two distinct groups.
	for _, k := range kernels {
		if len(k.Nodes) > 2 {
			t.Fatalf("over-fused kernel: %v", k.Nodes)
		}
	}
	// d must be alone.
	for _, k := range kernels {
		if k.Name == "d" && len(k.Nodes) != 1 {
			t.Fatalf("fan-out node fused: %v", k.Nodes)
		}
	}
}

func TestFuseStopsAtDeclaredOutput(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 1, 8)
	w := g.AddConst("w", tensor.Ones(8, 8))
	d := g.Add("dense", "d", nil, x, w)
	r := g.Add("relu", "r", nil, d)
	g.SetOutputs(d, r) // d itself is a declared output
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	kernels := Fuse(g, FusionLegacy)
	if len(kernels) != 2 {
		t.Fatalf("declared output must not be fused away: %d kernels", len(kernels))
	}
	// Unconstrained fusion keeps d inside the group but must materialize it
	// through an Emit slot since it is a declared output.
	kernels = Fuse(g, FusionUnconstrained)
	if len(kernels) != 1 {
		t.Fatalf("unconstrained fusion should absorb the declared output: %d kernels", len(kernels))
	}
	f := kernels[0].Fused
	if f == nil || len(f.Emits) != 1 || f.Emits[0] != d {
		t.Fatalf("declared-output intermediate must be emitted: %+v", f)
	}
}

func TestFuseCostAccounting(t *testing.T) {
	g := mlpGraph(rand.New(rand.NewSource(5)))
	if err := InferShapes(g); err != nil {
		t.Fatal(err)
	}
	fused := Fuse(g, FusionUnconstrained)
	unfused := Fuse(g, FusionOff)
	var fusedLaunches, unfusedLaunches int
	for _, k := range fused {
		fusedLaunches += k.Cost.Launches
	}
	for _, k := range unfused {
		unfusedLaunches += k.Cost.Launches
	}
	if fusedLaunches >= unfusedLaunches {
		t.Fatalf("fusion must reduce launches: %d vs %d", fusedLaunches, unfusedLaunches)
	}
	// FLOPs must be preserved by fusion, up to the recompute replays the
	// tape builder explicitly accounts for.
	var ff, uf, rf float64
	for _, k := range fused {
		ff += k.Cost.FLOPs
		if k.Fused != nil {
			rf += k.Fused.RecomputeFLOPs
		}
	}
	for _, k := range unfused {
		uf += k.Cost.FLOPs
	}
	if ff != uf+rf {
		t.Fatalf("fusion changed FLOPs: %v vs %v (+%v recompute)", ff, uf, rf)
	}
}

func TestModuleExecuteValidation(t *testing.T) {
	g := mlpGraph(rand.New(rand.NewSource(6)))
	m, err := Compile(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Execute(map[string]*tensor.Tensor{}); err == nil {
		t.Fatalf("expected missing-input error")
	}
	if _, err := m.Execute(map[string]*tensor.Tensor{"x": tensor.New(2, 8)}); err == nil {
		t.Fatalf("expected shape-mismatch error")
	}
}

func TestModuleTotalCost(t *testing.T) {
	g := mlpGraph(rand.New(rand.NewSource(7)))
	m, err := Compile(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	c := m.TotalCost()
	// Two dense layers at batch 1: 2*(8*16 + 16*4) FLOPs, plus relu flops.
	if c.FLOPs < 2*(8*16+16*4) {
		t.Fatalf("TotalCost.FLOPs = %v too small", c.FLOPs)
	}
}

func TestNodeCostStructuralZero(t *testing.T) {
	g := graph.New("g")
	x := g.AddInput("x", 1, 4)
	c := NodeCost(g, x)
	if c.FLOPs != 0 || c.Launches != 0 {
		t.Fatalf("input cost should be zero: %+v", c)
	}
}
