package compiler

import (
	"fmt"

	"duet/internal/graph"
	"duet/internal/ops"
	"duet/internal/tensor"
)

// Module is a compiled graph: the optimized graph plus its kernel plan.
// A Module is what the device models execute and what the profiler measures.
type Module struct {
	Graph   *graph.Graph
	Kernels []Kernel
	Opt     Options
}

// Compile optimizes the graph under opt and lowers it to kernels. The input
// graph is not mutated beyond shape inference.
func Compile(g *graph.Graph, opt Options) (*Module, error) {
	og, err := Optimize(g, opt)
	if err != nil {
		return nil, err
	}
	return &Module{Graph: og, Kernels: Fuse(og, opt.Fuse), Opt: opt}, nil
}

// Env holds runtime values for graph nodes during execution.
type Env map[graph.NodeID]*tensor.Tensor

// NewEnv validates the named inputs against the module's placeholders and
// returns an execution environment seeded with inputs and constants.
func (m *Module) NewEnv(inputs map[string]*tensor.Tensor) (Env, error) {
	env := make(Env, m.Graph.Len())
	for _, n := range m.Graph.Nodes() {
		switch {
		case n.IsConst():
			env[n.ID] = n.Value
		case n.IsInput():
			v, ok := inputs[n.Name]
			if !ok {
				return nil, fmt.Errorf("compiler: missing input %q", n.Name)
			}
			if !tensor.ShapeEq(v.Shape(), n.Shape) {
				return nil, fmt.Errorf("compiler: input %q has shape %v, want %v", n.Name, v.Shape(), n.Shape)
			}
			env[n.ID] = v
		}
	}
	return env, nil
}

// RunKernel executes one kernel's member ops in order against env, storing
// each member's value. The kernel's published output is env[k.Output()].
func (m *Module) RunKernel(k *Kernel, env Env) {
	for _, id := range k.Nodes {
		n := m.Graph.Node(id)
		def := ops.MustLookup(n.Op)
		in := make([]*tensor.Tensor, len(n.Inputs))
		for i, inID := range n.Inputs {
			v, ok := env[inID]
			if !ok {
				panic(fmt.Sprintf("compiler: kernel %s reads %q before it is computed", k.Name, m.Graph.Node(inID).Name))
			}
			in[i] = v
		}
		env[id] = def.Exec(n.Attrs, in)
	}
}

// Execute runs the whole module and returns the declared outputs in order.
func (m *Module) Execute(inputs map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	env, err := m.NewEnv(inputs)
	if err != nil {
		return nil, err
	}
	for i := range m.Kernels {
		m.RunKernel(&m.Kernels[i], env)
	}
	outs := make([]*tensor.Tensor, len(m.Graph.Outputs()))
	for i, o := range m.Graph.Outputs() {
		outs[i] = env[o]
	}
	return outs, nil
}

// TotalCost sums the cost descriptors of every kernel in the module.
func (m *Module) TotalCost() ops.Cost {
	var total ops.Cost
	for i := range m.Kernels {
		total = total.Add(m.Kernels[i].Cost)
	}
	return total
}

// KernelCount returns the number of launchable kernels — the headline
// number fusion reduces.
func (m *Module) KernelCount() int { return len(m.Kernels) }
