package compiler

import (
	"fmt"
	"sync"

	"duet/internal/graph"
	"duet/internal/ops"
	"duet/internal/tensor"
)

// Module is a compiled graph: the optimized graph plus its kernel plan.
// A Module is what the device models execute and what the profiler measures.
type Module struct {
	Graph   *graph.Graph
	Kernels []Kernel
	Opt     Options

	planOnce sync.Once
	plan     releasePlan
}

// releasePlan is the static part of the arena executor's liveness tracking,
// computed once per module: how many times each node's value is read (plus a
// sentinel read for declared outputs, which must survive the run), and which
// nodes are safe to recycle at all. Inputs and constants belong to the
// caller; alias ops (reshape/flatten) share storage with their operand, so
// neither an alias output nor anything an alias op reads may be recycled.
type releasePlan struct {
	uses       []int  // indexed by NodeID: consumer edges + output sentinel
	releasable []bool // indexed by NodeID
}

func (m *Module) releasePlan() *releasePlan {
	m.planOnce.Do(func() {
		g := m.Graph
		uses := make([]int, g.Len())
		releasable := make([]bool, g.Len())
		for _, n := range g.Nodes() {
			releasable[n.ID] = !n.IsInput() && !n.IsConst()
			if def, err := ops.Lookup(n.Op); err == nil && def.Alias {
				releasable[n.ID] = false
				for _, in := range n.Inputs {
					releasable[in] = false
				}
			}
		}
		for _, n := range g.Nodes() {
			for _, in := range n.Inputs {
				uses[in]++
			}
		}
		for _, o := range g.Outputs() {
			uses[o]++
		}
		m.plan = releasePlan{uses: uses, releasable: releasable}
	})
	return &m.plan
}

// Compile optimizes the graph under opt and lowers it to kernels. The input
// graph is not mutated beyond shape inference.
func Compile(g *graph.Graph, opt Options) (*Module, error) {
	og, err := Optimize(g, opt)
	if err != nil {
		return nil, err
	}
	return &Module{Graph: og, Kernels: Fuse(og, opt.fusionLevel()), Opt: opt}, nil
}

// Env holds runtime values for graph nodes during execution.
type Env map[graph.NodeID]*tensor.Tensor

// NewEnv validates the named inputs against the module's placeholders and
// returns an execution environment seeded with inputs and constants.
func (m *Module) NewEnv(inputs map[string]*tensor.Tensor) (Env, error) {
	env := make(Env, m.Graph.Len())
	for _, n := range m.Graph.Nodes() {
		switch {
		case n.IsConst():
			env[n.ID] = n.Value
		case n.IsInput():
			v, ok := inputs[n.Name]
			if !ok {
				return nil, fmt.Errorf("compiler: missing input %q", n.Name)
			}
			if !tensor.ShapeEq(v.Shape(), n.Shape) {
				return nil, fmt.Errorf("compiler: input %q has shape %v, want %v", n.Name, v.Shape(), n.Shape)
			}
			env[n.ID] = v
		}
	}
	return env, nil
}

// RunKernel executes one kernel's member ops in order against env, storing
// each member's value. The kernel's published output is env[k.Output()].
func (m *Module) RunKernel(k *Kernel, env Env) {
	for _, id := range k.Nodes {
		n := m.Graph.Node(id)
		def := ops.MustLookup(n.Op)
		in := make([]*tensor.Tensor, len(n.Inputs))
		for i, inID := range n.Inputs {
			v, ok := env[inID]
			if !ok {
				panic(fmt.Sprintf("compiler: kernel %s reads %q before it is computed", k.Name, m.Graph.Node(inID).Name))
			}
			in[i] = v
		}
		env[id] = def.Exec(n.Attrs, in)
	}
}

// Execute runs the whole module and returns the declared outputs in order.
func (m *Module) Execute(inputs map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	env, err := m.NewEnv(inputs)
	if err != nil {
		return nil, err
	}
	for i := range m.Kernels {
		m.RunKernel(&m.Kernels[i], env)
	}
	outs := make([]*tensor.Tensor, len(m.Graph.Outputs()))
	for i, o := range m.Graph.Outputs() {
		outs[i] = env[o]
	}
	return outs, nil
}

// ExecuteArena runs the whole module with intermediates drawn from ar,
// releasing each value back to the arena as soon as its last consumer has
// read it — a warm run recycles nearly every activation buffer. Fused
// kernels dispatch straight to the epilogue GEMM without materializing
// group intermediates. A nil arena degrades to Execute.
func (m *Module) ExecuteArena(inputs map[string]*tensor.Tensor, ar *tensor.Arena) ([]*tensor.Tensor, error) {
	if ar == nil {
		return m.Execute(inputs)
	}
	env, err := m.NewEnv(inputs)
	if err != nil {
		return nil, err
	}
	plan := m.releasePlan()
	uses := make([]int, len(plan.uses))
	copy(uses, plan.uses)
	// One input-slice buffer for the whole run; op Exec functions read it
	// during the call and must not retain it.
	var in []*tensor.Tensor
	consume := func(id graph.NodeID) {
		uses[id]--
		if uses[id] == 0 && plan.releasable[id] {
			ar.Release(env[id])
			delete(env, id)
		}
	}
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if f := k.Fused; f != nil {
			env[k.Output()] = m.runFused(k, f, env, ar)
			for _, id := range f.Consumes {
				consume(id)
			}
			continue
		}
		for _, id := range k.Nodes {
			n := m.Graph.Node(id)
			def := ops.MustLookup(n.Op)
			in = in[:0]
			for _, inID := range n.Inputs {
				v, ok := env[inID]
				if !ok {
					panic(fmt.Sprintf("compiler: kernel %s reads %q before it is computed", k.Name, m.Graph.Node(inID).Name))
				}
				in = append(in, v)
			}
			if def.ExecArena != nil {
				env[id] = def.ExecArena(n.Attrs, in, ar)
			} else {
				env[id] = def.Exec(n.Attrs, in)
			}
			for _, inID := range n.Inputs {
				consume(inID)
			}
		}
	}
	outs := make([]*tensor.Tensor, len(m.Graph.Outputs()))
	for i, o := range m.Graph.Outputs() {
		outs[i] = env[o]
	}
	return outs, nil
}

// runFused executes one fused kernel: the leader through its native
// kernel (the dense lead streams straight into the epilogue program with
// no intermediate buffer), the rest of the group as the compiled tape.
// Emitted intermediates land in arena buffers registered into env; the
// caller settles f.Consumes against the release plan.
func (m *Module) runFused(k *Kernel, f *FusedGroup, env Env, ar *tensor.Arena) *tensor.Tensor {
	var args []*tensor.Tensor
	if len(f.Args) > 0 {
		args = make([]*tensor.Tensor, len(f.Args))
		for i, a := range f.Args {
			v, ok := env[a]
			if !ok {
				panic(fmt.Sprintf("compiler: fused kernel %s reads %q before it is computed", k.Name, m.Graph.Node(a).Name))
			}
			args[i] = v
		}
	}
	var outs []*tensor.Tensor
	if len(f.Emits) > 0 {
		outs = make([]*tensor.Tensor, len(f.Emits))
		for i := range f.Emits {
			outs[i] = ar.NewNoZero(f.Prog.Shape()...)
		}
	}

	lead := m.Graph.Node(f.Lead)
	var dst *tensor.Tensor
	if lead.Op == "dense" {
		var bias *tensor.Tensor
		if len(f.LeadIns) == 3 {
			bias = env[f.LeadIns[2]]
		}
		dst = tensor.LinearChainInto(nil, env[f.LeadIns[0]], env[f.LeadIns[1]], bias, f.Prog, args, outs, ar)
	} else {
		def := ops.MustLookup(lead.Op)
		in := make([]*tensor.Tensor, len(f.LeadIns))
		for i, inID := range f.LeadIns {
			v, ok := env[inID]
			if !ok {
				panic(fmt.Sprintf("compiler: fused kernel %s reads %q before it is computed", k.Name, m.Graph.Node(inID).Name))
			}
			in[i] = v
		}
		if def.ExecArena != nil {
			dst = def.ExecArena(lead.Attrs, in, ar)
		} else {
			dst = def.Exec(lead.Attrs, in)
		}
		f.Prog.RunInPlace(dst, args, outs)
	}
	for i, e := range f.Emits {
		env[e] = outs[i]
	}
	return dst
}

// LaunchCount is the module's honest dispatch count: a fused kernel is one
// launch regardless of how many graph ops it absorbed, while an unlowered
// kernel dispatches each member through its registered op (structural ops
// report their own launch counts, typically zero). This is the metric
// unconstrained fusion strictly reduces.
func (m *Module) LaunchCount() int {
	total := 0
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if k.Fused != nil {
			total++
			continue
		}
		for _, id := range k.Nodes {
			total += NodeCost(m.Graph, id).Launches
		}
	}
	return total
}

// UnfusedLaunchCount is what LaunchCount would be had fusion not grouped
// anything: every kernel member dispatches through its registered op. The
// difference against LaunchCount is the launches fusion saved.
func (m *Module) UnfusedLaunchCount() int {
	total := 0
	for i := range m.Kernels {
		for _, id := range m.Kernels[i].Nodes {
			total += NodeCost(m.Graph, id).Launches
		}
	}
	return total
}

// FusionStats summarizes what the fusion pass did to this module.
type FusionStats struct {
	Groups         int     // kernels lowered to a fused launch
	FusedOps       int     // graph ops absorbed into those kernels
	Emits          int     // intermediates materialized by epilogue programs
	RecomputeFLOPs float64 // extra FLOPs spent replaying cheap producers
	RecomputeBytes float64 // save/load traffic those replays avoided
}

// FusionStats reports the module's fusion summary.
func (m *Module) FusionStats() FusionStats {
	var s FusionStats
	for i := range m.Kernels {
		f := m.Kernels[i].Fused
		if f == nil {
			continue
		}
		s.Groups++
		s.FusedOps += len(m.Kernels[i].Nodes)
		s.Emits += len(f.Emits)
		s.RecomputeFLOPs += f.RecomputeFLOPs
		s.RecomputeBytes += f.RecomputeBytes
	}
	return s
}

// FusedKernelNames lists the module's fused kernels as "name+N" tags,
// where name is the kernel's lead node and N counts the chain ops its
// epilogue tape absorbed. The profiler carries the joined tags into its
// records so the scheduler's audit can name the fused kernels behind each
// placement decision.
func (m *Module) FusedKernelNames() []string {
	var names []string
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if k.Fused == nil {
			continue
		}
		names = append(names, fmt.Sprintf("%s+%d", k.Name, len(k.Nodes)-1))
	}
	return names
}

// TotalCost sums the cost descriptors of every kernel in the module.
func (m *Module) TotalCost() ops.Cost {
	var total ops.Cost
	for i := range m.Kernels {
		total = total.Add(m.Kernels[i].Cost)
	}
	return total
}

// KernelCount returns the number of launchable kernels — the headline
// number fusion reduces.
func (m *Module) KernelCount() int { return len(m.Kernels) }
