package compiler

import (
	"math"
	"math/rand"
	"testing"

	"duet/internal/graph"
	"duet/internal/tensor"
)

// randomFusionGraph decodes the fuzz payload into a connected graph over a
// fixed [3,6] stream shape. Byte pairs select (operator, operands): unary
// and binary chain ops, broadcast row/scalar constants, self-binaries,
// dense leads, and extra declared outputs all arise from the byte stream,
// and operand reuse creates the multi-consumer intermediates the tape
// builder arbitrates between registers, recompute, and emits.
func randomFusionGraph(t *testing.T, data []byte) (*graph.Graph, map[string]*tensor.Tensor) {
	t.Helper()
	const m, n = 3, 6
	rng := rand.New(rand.NewSource(7))
	g := graph.New("fuzz-fusion")
	x := g.AddInput("x", m, n)
	w := g.AddConst("w", tensor.Rand(rng, 1, n, n))
	row := g.AddConst("row", tensor.Rand(rng, 1, n))
	scal := g.AddConst("scal", tensor.Rand(rng, 1, 1))

	unary := []string{"relu", "sigmoid", "tanh", "gelu", "exp", "sqrt"}
	binary := []string{"add", "sub", "mul", "div", "maximum"}
	vals := []graph.NodeID{x}
	var extra []graph.NodeID
	steps := len(data) / 2
	if steps > 24 {
		steps = 24
	}
	for i := 0; i < steps; i++ {
		op, sel := int(data[2*i]), int(data[2*i+1])
		pick := vals[sel%len(vals)]
		name := mustName("f", i)
		switch kind := op % 13; {
		case kind < 6:
			vals = append(vals, g.Add(unary[kind], name, nil, pick))
		case kind < 11:
			var second graph.NodeID
			switch (op / 13) % 4 {
			case 0:
				second = vals[(sel/7)%len(vals)]
			case 1:
				second = row
			case 2:
				second = scal
			default:
				second = pick // self-binary exercises SrcCur
			}
			vals = append(vals, g.Add(binary[kind-6], name, nil, pick, second))
		case kind == 11:
			vals = append(vals, g.Add("dense", name, nil, pick, w))
		default:
			if node := g.Node(pick); !node.IsInput() && !node.IsConst() {
				extra = append(extra, pick) // declare a mid-chain output
			}
		}
	}
	if len(vals) == 1 {
		vals = append(vals, g.Add("relu", "tail", nil, x))
	}
	tail := vals[len(vals)-1]
	outs := []graph.NodeID{tail}
	seen := map[graph.NodeID]bool{tail: true}
	for _, e := range extra {
		if !seen[e] {
			seen[e] = true
			outs = append(outs, e)
		}
	}
	g.SetOutputs(outs...)
	if err := InferShapes(g); err != nil {
		t.Fatalf("shape inference: %v", err)
	}
	return g, map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, m, n)}
}

// FuzzFusionEquivalence drives random elementwise/dense graphs through all
// three fusion levels and demands (a) bit-identical outputs from Execute
// and two warm ExecuteArena rounds at every level, and (b) the FLOP
// identity: the unconstrained fused plan's total FLOPs equal the unfused
// total plus exactly the recompute FLOPs its tapes declare.
func FuzzFusionEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 6, 2})                                                // short unary/binary chain
	f.Add([]byte{11, 0, 0, 1, 19, 1, 7, 3, 45, 2, 12, 1})                          // dense lead, broadcast adds, declared output
	f.Add([]byte{1, 0, 6, 1, 8, 1, 2, 2, 47, 3, 10, 2, 9, 4})                      // fork with reused intermediates
	f.Add([]byte{11, 0, 8, 1, 3, 2, 7, 2, 21, 3, 34, 4, 12, 2, 6, 5, 11, 5, 0, 6}) // deep mixed graph
	f.Fuzz(func(t *testing.T, data []byte) {
		g, inputs := randomFusionGraph(t, data)
		unconstrainedOutputs(t, g, inputs)

		offF := fuseFLOPs(Fuse(g, FusionOff))
		unc := Fuse(g, FusionUnconstrained)
		uncF := fuseFLOPs(unc)
		var rf float64
		for _, k := range unc {
			if k.Fused != nil {
				rf += k.Fused.RecomputeFLOPs
			}
		}
		if diff := math.Abs(uncF - (offF + rf)); diff > 1e-6*(1+offF) {
			t.Fatalf("FLOP identity broken: unconstrained %v != off %v + recompute %v", uncF, offF, rf)
		}
	})
}

func fuseFLOPs(ks []Kernel) float64 {
	var total float64
	for _, k := range ks {
		total += k.Cost.FLOPs
	}
	return total
}
