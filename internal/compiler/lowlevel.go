package compiler

import (
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/ops"
)

// Variant is one low-level schedule choice for a kernel — the
// hardware-dependent optimization layer of the compilation pipeline
// (Fig. 1: tiling size, vectorization, algorithm selection). A variant
// rescales the kernel's cost descriptor; the numerics of execution are
// unchanged (the host engine computes the same values), only the modelled
// time differs, exactly as TVM's schedule choices change performance but
// not semantics.
type Variant struct {
	Name string
	// FLOPsScale rescales arithmetic work (algorithmic substitution, e.g.
	// Winograd convolution).
	FLOPsScale float64
	// BytesScale rescales memory traffic (tiling/reuse quality).
	BytesScale float64
	// ParallelismScale rescales exposed parallelism (block granularity).
	ParallelismScale float64
}

// defaultVariant leaves the cost untouched.
var defaultVariant = Variant{Name: "default", FLOPsScale: 1, BytesScale: 1, ParallelismScale: 1}

// Apply returns the cost under this variant.
func (v Variant) Apply(c ops.Cost) ops.Cost {
	c.FLOPs *= v.FLOPsScale
	c.Bytes *= v.BytesScale
	c.Parallelism *= v.ParallelismScale
	return c
}

// variantsFor enumerates the legal schedule variants of a kernel. The
// leader op decides the family. Recurrent kernels (SeqSteps > 1) only get
// the default schedule: cross-timestep optimizations such as persistent
// kernels were not available in the modelled compiler generation — which
// is precisely why RNNs stay slow on the GPU (§III-B).
func variantsFor(g *graph.Graph, k *Kernel) []Variant {
	out := []Variant{defaultVariant}
	if k.Cost.SeqSteps > 1 {
		return out
	}
	leader := g.Node(k.Nodes[0])
	switch leader.Op {
	case "conv2d":
		// Winograd F(2x2, 3x3): ~2.25x fewer multiplies for unit-stride 3×3
		// convolutions, at the price of transformed-tile memory traffic.
		kh := 0
		for _, in := range leader.Inputs {
			src := g.Node(in)
			if src.IsConst() && len(src.Shape) == 4 {
				kh = src.Shape[2]
				break
			}
		}
		if kh == 3 && leader.Attrs.Int("stride", 1) == 1 {
			out = append(out, Variant{Name: "winograd", FLOPsScale: 0.45, BytesScale: 1.4, ParallelismScale: 1})
		}
		// Spatial tiling trade-off.
		out = append(out,
			Variant{Name: "tile-large", FLOPsScale: 1, BytesScale: 0.8, ParallelismScale: 0.85},
			Variant{Name: "tile-small", FLOPsScale: 1, BytesScale: 1.15, ParallelismScale: 1.3},
		)
	case "dense", "matmul", "batch_matmul", "mha":
		out = append(out,
			// Large blocks: better reuse, fewer independent work items.
			Variant{Name: "tile-large", FLOPsScale: 1, BytesScale: 0.8, ParallelismScale: 0.85},
			// Small blocks: more parallel slack, more traffic.
			Variant{Name: "tile-small", FLOPsScale: 1, BytesScale: 1.15, ParallelismScale: 1.3},
		)
	}
	return out
}

// TunedCosts selects, for every kernel of the module, the variant with the
// lowest modelled time on dev, returning the per-kernel tuned costs. With
// tuning disabled in the module's options, the raw costs return unchanged.
// This is the per-target back-end step: the same graph lowers differently
// for the CPU and the GPU.
func TunedCosts(m *Module, dev *device.Device) []ops.Cost {
	costs := make([]ops.Cost, len(m.Kernels))
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if !m.Opt.Tune {
			costs[i] = k.Cost
			continue
		}
		best := k.Cost
		bestT := dev.KernelTime(best)
		for _, v := range variantsFor(m.Graph, k) {
			c := v.Apply(k.Cost)
			if t := dev.KernelTime(c); t < bestT {
				best, bestT = c, t
			}
		}
		costs[i] = best
	}
	return costs
}

// TunedVariants reports which variant each kernel selected on dev — used
// by diagnostics and the tuning ablation.
func TunedVariants(m *Module, dev *device.Device) []string {
	names := make([]string, len(m.Kernels))
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if !m.Opt.Tune {
			names[i] = defaultVariant.Name
			continue
		}
		bestName := defaultVariant.Name
		bestT := dev.KernelTime(k.Cost)
		for _, v := range variantsFor(m.Graph, k) {
			if t := dev.KernelTime(v.Apply(k.Cost)); t < bestT {
				bestName, bestT = v.Name, t
			}
		}
		names[i] = bestName
	}
	return names
}

// VariantCosts enumerates, per kernel, the cost descriptor of every legal
// schedule variant (the default first). With tuning disabled only the raw
// cost appears. This exposes the variant search space analytically —
// downstream consumers (the learned cost model) can evaluate "what would
// per-device tuning pick" under any device model without running anything.
func VariantCosts(m *Module) [][]ops.Cost {
	out := make([][]ops.Cost, len(m.Kernels))
	for i := range m.Kernels {
		k := &m.Kernels[i]
		if !m.Opt.Tune {
			out[i] = []ops.Cost{k.Cost}
			continue
		}
		vs := variantsFor(m.Graph, k)
		cs := make([]ops.Cost, len(vs))
		for j, v := range vs {
			cs[j] = v.Apply(k.Cost)
		}
		out[i] = cs
	}
	return out
}
