// Package compiler is the DL-compiler substrate DUET builds on: graph-level
// optimization passes (constant folding, CSE, DCE, algebraic simplification,
// operator fusion) and lowering of a graph to an executable kernel plan.
// It stands in for TVM's graph-level optimizer and back-end (§II-B): the
// profiler compiles every subgraph through this pipeline so scheduling
// decisions see compiler-optimized costs (§IV-B).
package compiler

import (
	"fmt"

	"duet/internal/graph"
	"duet/internal/ops"
)

// InferShapes fills in Node.Shape for every node in topological order.
// Input and const nodes must already carry shapes.
func InferShapes(g *graph.Graph) error {
	for _, id := range g.TopoSort() {
		n := g.Node(id)
		if n.IsInput() || n.IsConst() {
			if n.Shape == nil {
				return fmt.Errorf("compiler: %s node %q has no shape", n.Op, n.Name)
			}
			continue
		}
		def, err := ops.Lookup(n.Op)
		if err != nil {
			return fmt.Errorf("compiler: node %q: %w", n.Name, err)
		}
		in := make([][]int, len(n.Inputs))
		for i, inID := range n.Inputs {
			in[i] = g.Node(inID).Shape
			if in[i] == nil {
				return fmt.Errorf("compiler: node %q consumes %q before its shape is known", n.Name, g.Node(inID).Name)
			}
		}
		shape, err := def.Infer(n.Attrs, in)
		if err != nil {
			return fmt.Errorf("compiler: node %q: %w", n.Name, err)
		}
		n.Shape = shape
	}
	return nil
}

// NodeCost returns the analytic cost descriptor of one node. Shapes must be
// inferred. Structural nodes (inputs/consts) cost nothing.
func NodeCost(g *graph.Graph, id graph.NodeID) ops.Cost {
	n := g.Node(id)
	if n.IsInput() || n.IsConst() {
		return ops.Cost{}
	}
	def := ops.MustLookup(n.Op)
	in := make([][]int, len(n.Inputs))
	for i, inID := range n.Inputs {
		in[i] = g.Node(inID).Shape
	}
	return def.Cost(n.Attrs, in, n.Shape)
}
