package compiler

import (
	"fmt"
	"sort"
	"strings"

	"duet/internal/graph"
	"duet/internal/ops"
	"duet/internal/tensor"
)

// rebuilder copies a graph while letting passes redirect or drop nodes.
type rebuilder struct {
	src   *graph.Graph
	dst   *graph.Graph
	remap map[graph.NodeID]graph.NodeID
}

func newRebuilder(src *graph.Graph) *rebuilder {
	return &rebuilder{src: src, dst: graph.New(src.Name), remap: make(map[graph.NodeID]graph.NodeID, src.Len())}
}

// copyNode clones node id (with remapped inputs) into the destination graph.
func (r *rebuilder) copyNode(id graph.NodeID) graph.NodeID {
	n := r.src.Node(id)
	inputs := make([]graph.NodeID, len(n.Inputs))
	for i, in := range n.Inputs {
		inputs[i] = r.remap[in]
	}
	var nid graph.NodeID
	switch {
	case n.IsInput():
		nid = r.dst.AddInput(n.Name, n.Shape...)
	case n.IsConst():
		nid = r.dst.AddConst(n.Name, n.Value)
	default:
		nid = r.dst.Add(n.Op, n.Name, n.Attrs.Clone(), inputs...)
		r.dst.Node(nid).Shape = append([]int(nil), n.Shape...)
	}
	r.remap[id] = nid
	return nid
}

// finish remaps the declared outputs and returns the rebuilt graph.
func (r *rebuilder) finish() *graph.Graph {
	outs := make([]graph.NodeID, len(r.src.Outputs()))
	for i, o := range r.src.Outputs() {
		outs[i] = r.remap[o]
	}
	r.dst.SetOutputs(outs...)
	return r.dst
}

// DCE removes nodes from which no declared output is reachable.
func DCE(g *graph.Graph) *graph.Graph {
	live := g.Reachable()
	r := newRebuilder(g)
	for _, id := range g.TopoSort() {
		if live[id] {
			r.copyNode(id)
		}
	}
	return r.finish()
}

// ConstantFold evaluates nodes whose inputs are all constants and replaces
// them with const nodes. Shapes must be inferred first.
func ConstantFold(g *graph.Graph) (*graph.Graph, error) {
	r := newRebuilder(g)
	for _, id := range g.TopoSort() {
		n := g.Node(id)
		if n.IsInput() || n.IsConst() {
			r.copyNode(id)
			continue
		}
		allConst := len(n.Inputs) > 0
		for _, in := range n.Inputs {
			if !r.dst.Node(r.remap[in]).IsConst() {
				allConst = false
				break
			}
		}
		if !allConst {
			r.copyNode(id)
			continue
		}
		def, err := ops.Lookup(n.Op)
		if err != nil {
			return nil, fmt.Errorf("compiler: fold %q: %w", n.Name, err)
		}
		inputs := make([]*tensor.Tensor, len(n.Inputs))
		for i, in := range n.Inputs {
			inputs[i] = r.dst.Node(r.remap[in]).Value
		}
		val := def.Exec(n.Attrs, inputs)
		r.remap[id] = r.dst.AddConst(n.Name, val)
	}
	return r.finish(), nil
}

// CSE merges structurally identical nodes: same op, same remapped inputs,
// and same attributes. Constants are merged when they are the same object.
func CSE(g *graph.Graph) *graph.Graph {
	r := newRebuilder(g)
	seen := make(map[string]graph.NodeID)
	for _, id := range g.TopoSort() {
		n := g.Node(id)
		if n.IsInput() {
			r.copyNode(id)
			continue
		}
		key := cseKey(r, n)
		if prev, ok := seen[key]; ok {
			r.remap[id] = prev
			continue
		}
		nid := r.copyNode(id)
		seen[key] = nid
	}
	return r.finish()
}

func cseKey(r *rebuilder, n *graph.Node) string {
	var b strings.Builder
	b.WriteString(n.Op)
	if n.IsConst() {
		// Identity-based: merging requires the same underlying tensor.
		fmt.Fprintf(&b, "|const:%p", n.Value)
		return b.String()
	}
	for _, in := range n.Inputs {
		fmt.Fprintf(&b, "|%d", r.remap[in])
	}
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%v", k, n.Attrs[k])
	}
	return b.String()
}

// Simplify applies local algebraic rewrites: x+0 → x, x*1 → x, x*0 → 0
// (as a folded const), and collapses identity reshapes.
func Simplify(g *graph.Graph) *graph.Graph {
	r := newRebuilder(g)
	for _, id := range g.TopoSort() {
		n := g.Node(id)
		if n.IsInput() || n.IsConst() {
			r.copyNode(id)
			continue
		}
		if alias, ok := simplifyAlias(g, r, n); ok {
			r.remap[id] = alias
			continue
		}
		r.copyNode(id)
	}
	return DCE(r.finish())
}

// simplifyAlias returns the destination node a simplifiable node collapses
// to, if any.
func simplifyAlias(g *graph.Graph, r *rebuilder, n *graph.Node) (graph.NodeID, bool) {
	constVal := func(i int) (*tensor.Tensor, bool) {
		src := g.Node(n.Inputs[i])
		if src.IsConst() {
			return src.Value, true
		}
		return nil, false
	}
	uniform := func(t *tensor.Tensor, v float32) bool {
		for _, x := range t.Data() {
			if x != v {
				return false
			}
		}
		return true
	}
	switch n.Op {
	case "add", "sub":
		if v, ok := constVal(1); ok && uniform(v, 0) {
			if tensor.ShapeEq(g.Node(n.Inputs[0]).Shape, n.Shape) {
				return r.remap[n.Inputs[0]], true
			}
		}
	case "mul", "div":
		if v, ok := constVal(1); ok && uniform(v, 1) {
			if tensor.ShapeEq(g.Node(n.Inputs[0]).Shape, n.Shape) {
				return r.remap[n.Inputs[0]], true
			}
		}
	case "reshape", "flatten":
		if tensor.ShapeEq(g.Node(n.Inputs[0]).Shape, n.Shape) {
			return r.remap[n.Inputs[0]], true
		}
	}
	return 0, false
}

// Options selects which graph-level optimizations run during compilation.
// The zero value disables everything (the framework-baseline configuration);
// DefaultOptions enables the full TVM-like pipeline.
type Options struct {
	Fold     bool
	CSE      bool
	Simplify bool
	DCE      bool
	Fuse     bool
	// Tune enables per-device low-level schedule selection (TunedCosts).
	Tune bool
	// Fusion selects the fusion strategy. FusionAuto (the zero value)
	// resolves from the legacy Fuse bool: unconstrained when Fuse is set,
	// off otherwise. Set it explicitly for ablations (off/legacy).
	Fusion FusionLevel
}

// DefaultOptions enables every pass.
func DefaultOptions() Options {
	return Options{Fold: true, CSE: true, Simplify: true, DCE: true, Fuse: true, Tune: true}
}

// fusionLevel resolves the effective fusion level from the knob and the
// legacy Fuse bool.
func (o Options) fusionLevel() FusionLevel {
	if o.Fusion != FusionAuto {
		return o.Fusion
	}
	if o.Fuse {
		return FusionUnconstrained
	}
	return FusionOff
}

// Optimize runs the enabled graph-level passes and returns the rewritten
// graph with shapes inferred.
func Optimize(g *graph.Graph, opt Options) (*graph.Graph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := InferShapes(g); err != nil {
		return nil, err
	}
	var err error
	if opt.Fold {
		if g, err = ConstantFold(g); err != nil {
			return nil, err
		}
	}
	if opt.CSE {
		g = CSE(g)
	}
	if opt.Simplify {
		g = Simplify(g)
	}
	if opt.DCE {
		g = DCE(g)
	}
	// Rewrites preserve shapes node-by-node, but re-infer to be safe.
	if err := InferShapes(g); err != nil {
		return nil, err
	}
	return g, nil
}
