package compiler

import (
	"fmt"
	"sort"

	"duet/internal/graph"
	"duet/internal/ops"
	"duet/internal/tensor"
)

// FusionLevel selects how aggressively the compiler fuses operators into
// kernels. The zero value resolves from the legacy Options.Fuse bool so
// configurations predating the knob keep their meaning.
type FusionLevel int

const (
	// FusionAuto resolves to FusionOff when Options.Fuse is false and to
	// FusionUnconstrained otherwise.
	FusionAuto FusionLevel = iota
	// FusionOff emits one kernel per graph node (the framework baseline).
	FusionOff
	// FusionLegacy grows single-consumer elementwise chains behind any
	// leader but lowers only dense[+bias][+relu|sigmoid] groups to a fused
	// kernel — the behavior before unconstrained fusion landed, kept for
	// ablations.
	FusionLegacy
	// FusionUnconstrained grows maximal fusion groups over arbitrary
	// elementwise/broadcast chains — through multi-consumer forks, residual
	// re-joins, and declared outputs — and lowers every multi-op group to
	// one epilogue-program kernel.
	FusionUnconstrained
)

// String names the level for flags, reports, and audit lines.
func (l FusionLevel) String() string {
	switch l {
	case FusionAuto:
		return "auto"
	case FusionOff:
		return "off"
	case FusionLegacy:
		return "legacy"
	case FusionUnconstrained:
		return "unconstrained"
	}
	return fmt.Sprintf("FusionLevel(%d)", int(l))
}

// ParseFusionLevel maps a flag string to a FusionLevel.
func ParseFusionLevel(s string) (FusionLevel, error) {
	switch s {
	case "", "auto":
		return FusionAuto, nil
	case "off":
		return FusionOff, nil
	case "legacy":
		return FusionLegacy, nil
	case "unconstrained":
		return FusionUnconstrained, nil
	}
	return FusionAuto, fmt.Errorf("compiler: unknown fusion level %q (want off|legacy|unconstrained)", s)
}

// maxChainRegs bounds the chunk-local scratch rows an epilogue program may
// hold live at once. Groups that exceed it fall back to recompute, and to
// unlowered op-by-op dispatch when recompute is infeasible too.
const maxChainRegs = 8

// Kernel is one launchable unit in a compiled module: a group leader plus
// the elementwise ops fused behind it (or a lone operator when fusion is
// off / impossible). Cost reflects the fused launch structure — this is
// precisely why compiler-aware profiling matters: the same subgraph has
// different launch counts and memory traffic after fusion (§III-A).
type Kernel struct {
	Name  string
	Nodes []graph.NodeID // execution order; Nodes[0] is the group leader
	Cost  ops.Cost
	// Fused, when non-nil, lowers the whole group to a single launch: the
	// leader's native kernel followed by an epilogue program streamed over
	// its output. Only set when the program reproduces the group bit-exactly.
	Fused *FusedGroup
}

// FusedGroup is the lowered form of a fusion group: the leader executes
// through its registered kernel (the dense lead gets the fused
// GEMM+epilogue fast path) and the epilogue program transforms the result
// in place. Group intermediates live in chunk-local registers or are
// recomputed; only values with readers outside the group are materialized,
// each exactly once, through an Emit slot.
type FusedGroup struct {
	Lead    graph.NodeID   // group leader (executes natively)
	LeadIns []graph.NodeID // leader's operand node ids
	Prog    *tensor.Program
	Args    []graph.NodeID // external tape operands, indexed by Instr.Arg
	Emits   []graph.NodeID // node materialized by Emit slot i
	// InstrNodes maps each tape instruction to the graph node it computes
	// (arithmetic), snapshots (save/load), or materializes (emit). The
	// verify fusion pass replays the tape against the graph through it.
	InstrNodes []graph.NodeID
	// Consumes lists, with multiplicity, the consumer edges this kernel
	// settles against the release plan: the leader's operands, every edge
	// from a member to an outside value, and the in-group edges of emitted
	// values (their buffers are real, so their in-group reads must count).
	Consumes []graph.NodeID
	// RecomputeFLOPs / RecomputeBytes quantify the recompute-vs-materialize
	// arbitration: extra FLOPs spent replaying cheap producers, and the
	// save/load memory traffic those replays avoided.
	RecomputeFLOPs float64
	RecomputeBytes float64
}

// Fuse groups the graph's compute nodes into kernels at the given fusion
// level. Groups are grown greedily in leader topological order; the
// absorbed ops' FLOPs fold into the leader's cost while the leader keeps
// its launch count, which is what makes fused subgraphs cheaper to the
// scheduler before any placement decision happens.
func Fuse(g *graph.Graph, level FusionLevel) []Kernel {
	if level == FusionAuto {
		level = FusionUnconstrained
	}
	consumers := g.Consumers()
	assigned := make(map[graph.NodeID]bool)
	declared := make(map[graph.NodeID]bool)
	for _, o := range g.Outputs() {
		declared[o] = true
	}
	var kernels []Kernel

	for _, id := range g.TopoSort() {
		n := g.Node(id)
		if n.IsInput() || n.IsConst() || assigned[id] {
			continue
		}
		assigned[id] = true
		var group []graph.NodeID
		switch level {
		case FusionUnconstrained:
			group = growUnconstrained(g, id, consumers, assigned)
		case FusionLegacy:
			group = growLegacy(g, id, consumers, assigned, declared)
		default:
			group = []graph.NodeID{id}
		}

		k := Kernel{Name: g.Node(group[0]).Name, Nodes: group}
		switch level {
		case FusionUnconstrained:
			k.Fused = lowerGroup(g, group, consumers, declared)
			k.Cost = unconstrainedCost(g, group, k.Fused)
		case FusionLegacy:
			k.Fused = lowerLegacyLinear(g, group)
			k.Cost = legacyCost(g, group)
		default:
			k.Cost = NodeCost(g, id)
		}
		kernels = append(kernels, k)
	}
	return kernels
}

// growLegacy reproduces the pre-unconstrained grouping: the leader absorbs
// a following chain of elementwise ops, provided each absorbed op is the
// sole consumer of the group's current tail, the tail is not a declared
// output, and all its other operands are consts or values produced outside
// the group.
func growLegacy(g *graph.Graph, id graph.NodeID, consumers map[graph.NodeID][]graph.NodeID,
	assigned, declared map[graph.NodeID]bool) []graph.NodeID {
	group := []graph.NodeID{id}
	tail := id
	for {
		// The tail's value must stay private to the group: exactly one
		// consumer and not a declared output.
		if declared[tail] || len(consumers[tail]) != 1 {
			break
		}
		next := consumers[tail][0]
		nn := g.Node(next)
		if assigned[next] {
			break
		}
		def, err := ops.Lookup(nn.Op)
		if err != nil || !def.Elementwise {
			break
		}
		// Other operands must be consts, runtime inputs, or values from
		// kernels already emitted (groups are emitted in leader topological
		// order, so an operand still unassigned would be computed *after*
		// this kernel runs). Operands inside the group other than the tail
		// would break the single-stream epilogue.
		ok := true
		inGroup := make(map[graph.NodeID]bool, len(group))
		for _, m := range group {
			inGroup[m] = true
		}
		for _, in := range nn.Inputs {
			if in == tail {
				continue
			}
			if inGroup[in] {
				ok = false
				break
			}
			if src := g.Node(in); !src.IsInput() && !src.IsConst() && !assigned[in] {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		group = append(group, next)
		assigned[next] = true
		tail = next
	}
	return group
}

// growUnconstrained grows a maximal fusion group: any elementwise consumer
// of any group value joins, as long as its output keeps the group's stream
// shape and its remaining operands are consts, runtime inputs, or values
// already assigned to earlier kernels. Multi-consumer intermediates,
// residual re-joins (both operands inside the group), and declared outputs
// all stay inside the group — the tape builder decides per value whether
// to register-materialize, recompute, or emit it.
func growUnconstrained(g *graph.Graph, lead graph.NodeID, consumers map[graph.NodeID][]graph.NodeID,
	assigned map[graph.NodeID]bool) []graph.NodeID {
	shape := g.Node(lead).Shape
	members := []graph.NodeID{lead}
	memberSet := map[graph.NodeID]bool{lead: true}
	for progress := true; progress; {
		progress = false
		cands := make(map[graph.NodeID]bool)
		for _, m := range members {
			for _, c := range consumers[m] {
				if !memberSet[c] && !assigned[c] {
					cands[c] = true
				}
			}
		}
		sorted := make([]graph.NodeID, 0, len(cands))
		for c := range cands {
			sorted = append(sorted, c)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, c := range sorted {
			n := g.Node(c)
			def, err := ops.Lookup(n.Op)
			if err != nil || !def.Elementwise || def.Alias {
				continue
			}
			// Only ops the tape can express join; elementwise ops outside the
			// chain vocabulary (batchnorm2d's per-channel affine, dropout, …)
			// would force the whole group back to op-by-op execution. The lead
			// is exempt — it executes natively before the tape runs.
			if _, ok := chainOpOf(n.Op); !ok {
				continue
			}
			if !tensor.ShapeEq(n.Shape, shape) {
				continue
			}
			ok := true
			for _, in := range n.Inputs {
				if memberSet[in] {
					continue
				}
				if src := g.Node(in); !src.IsInput() && !src.IsConst() && !assigned[in] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			members = append(members, c)
			memberSet[c] = true
			assigned[c] = true
			progress = true
		}
	}
	// Node ids are topological by construction, so ascending id order is a
	// valid execution order for the tape.
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}

// chainOpOf maps a registered elementwise op kind to its tape opcode.
func chainOpOf(kind string) (tensor.ChainOp, bool) { return ChainOpFor(kind) }

// ChainOpFor maps a registered elementwise op kind to its tape opcode; the
// verify fusion pass uses it to replay tapes against the graph.
func ChainOpFor(kind string) (tensor.ChainOp, bool) {
	switch kind {
	case "relu":
		return tensor.ChainReLU, true
	case "sigmoid":
		return tensor.ChainSigmoid, true
	case "tanh":
		return tensor.ChainTanh, true
	case "gelu":
		return tensor.ChainGELU, true
	case "exp":
		return tensor.ChainExp, true
	case "sqrt":
		return tensor.ChainSqrt, true
	case "add":
		return tensor.ChainAdd, true
	case "sub":
		return tensor.ChainSub, true
	case "mul":
		return tensor.ChainMul, true
	case "div":
		return tensor.ChainDiv, true
	case "maximum":
		return tensor.ChainMaximum, true
	}
	return 0, false
}

// tapeState carries the incremental lowering of one fusion group to an
// epilogue program.
type tapeState struct {
	g         *graph.Graph
	shape     []int
	numel     float64
	members   []graph.NodeID
	memberSet map[graph.NodeID]bool
	declared  map[graph.NodeID]bool

	instrs     []tensor.Instr
	instrNodes []graph.NodeID
	args       []graph.NodeID
	argIdx     map[graph.NodeID]int
	emits      []graph.NodeID

	cur      graph.NodeID
	regOf    map[graph.NodeID]int
	regFree  []int
	remUses  map[graph.NodeID]int // unconsumed in-group reads per value
	replayOf map[graph.NodeID]replayInfo

	recomputeFLOPs float64
	recomputeBytes float64
}

// replayInfo is everything needed to recompute a value on the tape instead
// of holding it in a register: its arithmetic instruction and the in-group
// operands that instruction reads (which stay register-pinned until the
// replay happens).
type replayInfo struct {
	instr      tensor.Instr
	parent     graph.NodeID // stream operand
	operand    graph.NodeID // in-group register operand, when instr.Src is SrcReg
	hasOperand bool
}

// lowerGroup lowers an unconstrained fusion group to a FusedGroup, or nil
// when the group is a single node or the tape cannot express it (register
// spill with no recompute path); unlowered groups keep op-by-op dispatch.
func lowerGroup(g *graph.Graph, members []graph.NodeID, consumers map[graph.NodeID][]graph.NodeID,
	declared map[graph.NodeID]bool) *FusedGroup {
	if len(members) < 2 {
		return nil
	}
	lead := members[0]
	leadNode := g.Node(lead)
	if def, err := ops.Lookup(leadNode.Op); err != nil || def.Alias {
		return nil
	}
	ts := &tapeState{
		g:         g,
		shape:     leadNode.Shape,
		numel:     float64(numelOf(leadNode.Shape)),
		members:   members,
		memberSet: make(map[graph.NodeID]bool, len(members)),
		declared:  declared,
		argIdx:    make(map[graph.NodeID]int),
		cur:       lead,
		regOf:     make(map[graph.NodeID]int),
		remUses:   make(map[graph.NodeID]int),
		replayOf:  make(map[graph.NodeID]replayInfo),
	}
	for r := maxChainRegs - 1; r >= 0; r-- {
		ts.regFree = append(ts.regFree, r)
	}
	for _, m := range members {
		ts.memberSet[m] = true
	}
	for _, m := range members[1:] {
		for _, in := range g.Node(m).Inputs {
			if ts.memberSet[in] {
				ts.remUses[in]++
			}
		}
	}
	tail := members[len(members)-1]
	published := func(v graph.NodeID) bool {
		if v == tail {
			return false
		}
		if declared[v] {
			return true
		}
		for _, c := range consumers[v] {
			if !ts.memberSet[c] {
				return true
			}
		}
		return false
	}

	if published(lead) {
		ts.emitValue(lead)
	}
	for i := 1; i < len(members); i++ {
		m := members[i]
		if !ts.lowerMember(m, members[i:], members[i+1:]) {
			return nil
		}
		if published(m) {
			ts.emitValue(m)
		}
	}

	prog, err := ts.compile()
	if err != nil {
		// The tape machinery rejected the group; fall back to op-by-op.
		return nil
	}
	f := &FusedGroup{
		Lead:           lead,
		LeadIns:        append([]graph.NodeID(nil), leadNode.Inputs...),
		Prog:           prog,
		Args:           ts.args,
		Emits:          ts.emits,
		InstrNodes:     ts.instrNodes,
		RecomputeFLOPs: ts.recomputeFLOPs,
		RecomputeBytes: ts.recomputeBytes,
	}
	f.Consumes = groupConsumes(g, members, ts.memberSet, f.Emits)
	return f
}

// lowerMember appends the tape instructions that compute member m: stream
// switching (load/replay), preservation of the value m's instruction
// overwrites, the arithmetic instruction itself, and the consumption
// bookkeeping. fromM is the member slice starting at m itself (consulted
// when the arbitration must know whether m reads a displaced value);
// afterM is the slice of members still to come after m.
func (ts *tapeState) lowerMember(m graph.NodeID, fromM, afterM []graph.NodeID) bool {
	n := ts.g.Node(m)
	op, ok := chainOpOf(n.Op)
	if !ok {
		return false
	}
	// Pick the stream parent: the current stream when it feeds m, else m's
	// first in-group operand.
	var parents []graph.NodeID
	for _, in := range n.Inputs {
		if ts.memberSet[in] {
			parents = append(parents, in)
		}
	}
	if len(parents) == 0 {
		return false
	}
	parent := parents[0]
	for _, p := range parents {
		if p == ts.cur {
			parent = p
			break
		}
	}
	if parent != ts.cur {
		if !ts.switchStream(parent, fromM) {
			return false
		}
	}

	var instr tensor.Instr
	var regOperand graph.NodeID
	hasRegOperand := false
	switch {
	case op.IsUnary():
		if len(n.Inputs) != 1 || n.Inputs[0] != parent {
			return false
		}
		instr = tensor.Instr{Op: op}
	case op.IsBinary():
		if len(n.Inputs) != 2 {
			return false
		}
		a, b := n.Inputs[0], n.Inputs[1]
		switch {
		case a == parent && b == parent:
			instr = tensor.Instr{Op: op, Src: tensor.SrcCur}
		case a == parent:
			var okSrc bool
			instr, okSrc = ts.operandInstr(op, b, false)
			if !okSrc {
				return false
			}
			if ts.memberSet[b] {
				regOperand, hasRegOperand = b, true
			}
		case b == parent:
			var okSrc bool
			instr, okSrc = ts.operandInstr(op, a, true)
			if !okSrc {
				return false
			}
			if ts.memberSet[a] {
				regOperand, hasRegOperand = a, true
			}
		default:
			return false
		}
	default:
		return false
	}
	// The instruction overwrites the stream (parent's value). Preserve it
	// first if readers remain beyond m's own edges.
	edges := 0
	for _, in := range n.Inputs {
		if in == parent {
			edges++
		}
	}
	if !ts.preserveValue(parent, ts.remUses[parent]-edges, afterM) {
		return false
	}
	ts.emit(instr, m)
	// m consumes its in-group operands (one read per edge).
	for _, in := range n.Inputs {
		if ts.memberSet[in] {
			ts.consumeValue(in)
		}
	}
	ts.cur = m
	ts.replayOf[m] = replayInfo{instr: instr, parent: parent, operand: regOperand, hasOperand: hasRegOperand}
	return true
}

// operandInstr builds the binary instruction for a non-stream operand:
// an external kernel input, or an in-group value pinned in a register.
func (ts *tapeState) operandInstr(op tensor.ChainOp, operand graph.NodeID, rev bool) (tensor.Instr, bool) {
	if !ts.memberSet[operand] {
		return tensor.Instr{Op: op, Arg: ts.argSlot(operand), Src: tensor.SrcArg, Rev: rev}, true
	}
	reg, ok := ts.regOf[operand]
	if !ok {
		// The operand was neither saved nor recomputable into a register —
		// the group cannot be expressed as a tape.
		return tensor.Instr{}, false
	}
	return tensor.Instr{Op: op, Arg: reg, Src: tensor.SrcReg, Rev: rev}, true
}

// switchStream moves the stream from ts.cur to target: the displaced value
// is kept reachable if still needed (save or recompute arbitration), then
// the target is loaded from its register or replayed.
func (ts *tapeState) switchStream(target graph.NodeID, fromM []graph.NodeID) bool {
	if !ts.preserveValue(ts.cur, ts.remUses[ts.cur], fromM) {
		return false
	}
	if reg, ok := ts.regOf[target]; ok {
		ts.emit(tensor.Instr{Op: tensor.ChainLoad, Arg: reg}, target)
		ts.cur = target
		return true
	}
	return ts.replay(target)
}

// preserveValue keeps v reachable before the stream overwrites it: no-op
// when nothing reads it again (or it already sits in a register), else the
// recompute-vs-materialize arbitration, a register save, or — with no free
// register left — a forced recompute. Returns false when the tape cannot
// express the group at all.
func (ts *tapeState) preserveValue(v graph.NodeID, future int, rest []graph.NodeID) bool {
	if future <= 0 {
		return true
	}
	if _, saved := ts.regOf[v]; saved {
		return true
	}
	if ts.keepByRecompute(v, future, rest) {
		return true
	}
	if ts.saveValue(v) {
		return true
	}
	// No free register: recompute regardless of cost if the tape allows it,
	// else give up on lowering this group.
	return ts.markRecompute(v, future)
}

// keepByRecompute is the recompute-vs-materialize cost arbitration for a
// value the stream is moving past: replaying a cheap producer (≤ ~2 FLOPs
// per element, the cost of the save+load round trip it replaces) wins over
// burning a register when the value has exactly one pending use and that
// use will consume it as its stream parent.
func (ts *tapeState) keepByRecompute(v graph.NodeID, future int, rest []graph.NodeID) bool {
	if future != 1 || ts.declared[v] {
		return false
	}
	flops := NodeCost(ts.g, v).FLOPs
	if ts.numel > 0 && flops > 2*ts.numel {
		return false
	}
	// The single future consumer must use v as its stream parent, which is
	// guaranteed when v is its only in-group operand.
	for _, f := range rest {
		uses := 0
		others := 0
		for _, in := range ts.g.Node(f).Inputs {
			if in == v {
				uses++
			} else if ts.memberSet[in] {
				others++
			}
		}
		if uses > 0 {
			if others > 0 {
				return false
			}
			break
		}
	}
	return ts.markRecompute(v, future)
}

// markRecompute arranges for v to be replayed on demand: its producing
// instruction's in-group operands gain one pending use per future replay,
// so their registers stay live until every replay has run.
func (ts *tapeState) markRecompute(v graph.NodeID, future int) bool {
	ri, ok := ts.replayOf[v]
	if !ok {
		return false
	}
	if _, ok := ts.regOf[ri.parent]; !ok {
		return false
	}
	if ri.hasOperand {
		// The register operand must still hold the value the instruction
		// originally read — a reused register would replay garbage.
		if reg, ok := ts.regOf[ri.operand]; !ok || reg != ri.instr.Arg {
			return false
		}
		ts.remUses[ri.operand] += future
	}
	ts.remUses[ri.parent] += future
	return true
}

// replay re-emits the instructions that compute target from its pinned
// operands: load the parent, re-run the arithmetic instruction.
func (ts *tapeState) replay(target graph.NodeID) bool {
	ri, ok := ts.replayOf[target]
	if !ok {
		return false
	}
	reg, ok := ts.regOf[ri.parent]
	if !ok {
		return false
	}
	if ri.hasOperand {
		if r, ok := ts.regOf[ri.operand]; !ok || r != ri.instr.Arg {
			return false
		}
	}
	if ts.cur != ri.parent {
		ts.emit(tensor.Instr{Op: tensor.ChainLoad, Arg: reg}, ri.parent)
	}
	ts.emit(ri.instr, target)
	ts.consumeValue(ri.parent)
	if ri.hasOperand {
		ts.consumeValue(ri.operand)
	}
	ts.recomputeFLOPs += NodeCost(ts.g, target).FLOPs
	ts.recomputeBytes += 8 * ts.numel // the save+load traffic avoided
	ts.cur = target
	return true
}

// saveValue snapshots the current stream value into a free register.
func (ts *tapeState) saveValue(v graph.NodeID) bool {
	if len(ts.regFree) == 0 {
		return false
	}
	reg := ts.regFree[len(ts.regFree)-1]
	ts.regFree = ts.regFree[:len(ts.regFree)-1]
	ts.regOf[v] = reg
	ts.emit(tensor.Instr{Op: tensor.ChainSave, Arg: reg}, v)
	return true
}

// consumeValue retires one pending in-group read of v, freeing its
// register once nothing will read it again.
func (ts *tapeState) consumeValue(v graph.NodeID) {
	ts.remUses[v]--
	if ts.remUses[v] <= 0 {
		if reg, ok := ts.regOf[v]; ok {
			delete(ts.regOf, v)
			ts.regFree = append(ts.regFree, reg)
		}
	}
}

// emitValue materializes the current stream value into a fresh output slot.
func (ts *tapeState) emitValue(v graph.NodeID) {
	slot := len(ts.emits)
	ts.emits = append(ts.emits, v)
	ts.emit(tensor.Instr{Op: tensor.ChainEmit, Arg: slot}, v)
}

// argSlot interns an external operand, returning its tape index.
func (ts *tapeState) argSlot(v graph.NodeID) int {
	if i, ok := ts.argIdx[v]; ok {
		return i
	}
	i := len(ts.args)
	ts.argIdx[v] = i
	ts.args = append(ts.args, v)
	return i
}

func (ts *tapeState) emit(instr tensor.Instr, node graph.NodeID) {
	ts.instrs = append(ts.instrs, instr)
	ts.instrNodes = append(ts.instrNodes, node)
}

// compile hands the finished tape to the tensor layer.
func (ts *tapeState) compile() (*tensor.Program, error) {
	argShapes := make([][]int, len(ts.args))
	for i, a := range ts.args {
		argShapes[i] = ts.g.Node(a).Shape
	}
	return tensor.CompileChain(ts.instrs, ts.shape, argShapes)
}

// groupConsumes derives the consumer edges a fused kernel settles: the
// leader's operands, every member edge to an outside value, and the
// in-group edges of emitted values.
func groupConsumes(g *graph.Graph, members []graph.NodeID, memberSet map[graph.NodeID]bool,
	emits []graph.NodeID) []graph.NodeID {
	var consumes []graph.NodeID
	for _, in := range g.Node(members[0]).Inputs {
		consumes = append(consumes, in)
	}
	for _, m := range members[1:] {
		for _, in := range g.Node(m).Inputs {
			if !memberSet[in] {
				consumes = append(consumes, in)
			}
		}
	}
	emitted := make(map[graph.NodeID]bool, len(emits))
	for _, e := range emits {
		emitted[e] = true
	}
	for _, m := range members[1:] {
		for _, in := range g.Node(m).Inputs {
			if emitted[in] {
				consumes = append(consumes, in)
			}
		}
	}
	return consumes
}

// unconstrainedCost merges the group's cost descriptor: the leader keeps
// its launch count, absorbed FLOPs (plus recompute replays) fold in, and
// the fused kernel's memory traffic grows only by its real external reads
// (tape operands) and writes (emitted intermediates) — the eliminated
// intermediate round trips are exactly the point of the pass.
func unconstrainedCost(g *graph.Graph, group []graph.NodeID, f *FusedGroup) ops.Cost {
	cost := NodeCost(g, group[0])
	for _, m := range group[1:] {
		c := NodeCost(g, m)
		cost.FLOPs += c.FLOPs
		if c.Parallelism > cost.Parallelism {
			cost.Parallelism = c.Parallelism
		}
		if c.SeqSteps > cost.SeqSteps {
			cost.SeqSteps = c.SeqSteps
		}
	}
	if len(group) > 1 && cost.Launches == 0 {
		cost.Launches = 1
	}
	if f == nil {
		return cost
	}
	cost.FLOPs += f.RecomputeFLOPs
	numelS := float64(numelOf(g.Node(f.Lead).Shape))
	for _, a := range f.Args {
		cost.Bytes += 4 * float64(numelOf(g.Node(a).Shape))
	}
	cost.Bytes += 8 * numelS * float64(len(f.Emits))
	return cost
}

// legacyCost reproduces the pre-unconstrained cost merge exactly: epilogue
// FLOPs fold in, the leader's launch count and memory traffic stand, and
// the widest member determines available parallelism.
func legacyCost(g *graph.Graph, group []graph.NodeID) ops.Cost {
	cost := NodeCost(g, group[0])
	for _, m := range group[1:] {
		c := NodeCost(g, m)
		cost.FLOPs += c.FLOPs
		if c.Parallelism > cost.Parallelism {
			cost.Parallelism = c.Parallelism
		}
		if c.SeqSteps > cost.SeqSteps {
			cost.SeqSteps = c.SeqSteps
		}
	}
	if len(group) > 1 && cost.Launches == 0 {
		// A structural leader (reshape/flatten) that absorbed real work
		// still launches one kernel.
		cost.Launches = 1
	}
	return cost
}

// lowerLegacyLinear matches a fusion group against the epilogue patterns
// the old fixed-function GEMM kernel supported, now expressed as a tape.
// Lowering is all-or-nothing: if any group member falls outside
// [dense][, add(·, bias[N])][, relu|sigmoid], the group keeps generic
// op-by-op dispatch. A bias add folds only when the dense carries no bias
// operand of its own, and only in the canonical add(tail, bias) operand
// order — bias length must equal the dense output width exactly (scalar
// broadcasts stay generic).
func lowerLegacyLinear(g *graph.Graph, group []graph.NodeID) *FusedGroup {
	lead := g.Node(group[0])
	if lead.Op != "dense" {
		return nil
	}
	hasBias := len(lead.Inputs) == 3
	var instrs []tensor.Instr
	var instrNodes, args []graph.NodeID
	tail := group[0]
	i := 1
	if i < len(group) {
		n := g.Node(group[i])
		if n.Op == "add" && !hasBias && n.Inputs[0] == tail {
			if b := g.Node(n.Inputs[1]); len(b.Shape) == 1 && len(lead.Shape) == 2 && b.Shape[0] == lead.Shape[1] {
				instrs = append(instrs, tensor.Instr{Op: tensor.ChainAdd, Arg: 0, Src: tensor.SrcArg})
				instrNodes = append(instrNodes, group[i])
				args = append(args, n.Inputs[1])
				tail = group[i]
				i++
			}
		}
	}
	if i < len(group) {
		n := g.Node(group[i])
		if len(n.Inputs) == 1 && n.Inputs[0] == tail {
			switch n.Op {
			case "relu":
				instrs = append(instrs, tensor.Instr{Op: tensor.ChainReLU})
				instrNodes = append(instrNodes, group[i])
				i++
			case "sigmoid":
				instrs = append(instrs, tensor.Instr{Op: tensor.ChainSigmoid})
				instrNodes = append(instrNodes, group[i])
				i++
			}
		}
	}
	if i != len(group) {
		return nil
	}
	argShapes := make([][]int, len(args))
	for ai, a := range args {
		argShapes[ai] = g.Node(a).Shape
	}
	prog, err := tensor.CompileChain(instrs, lead.Shape, argShapes)
	if err != nil {
		return nil
	}
	memberSet := make(map[graph.NodeID]bool, len(group))
	for _, m := range group {
		memberSet[m] = true
	}
	return &FusedGroup{
		Lead:       group[0],
		LeadIns:    append([]graph.NodeID(nil), lead.Inputs...),
		Prog:       prog,
		Args:       args,
		InstrNodes: instrNodes,
		Consumes:   groupConsumes(g, group, memberSet, nil),
	}
}

// numelOf returns the element count of a shape.
func numelOf(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Output returns the node whose value the kernel publishes (its last node).
func (k *Kernel) Output() graph.NodeID { return k.Nodes[len(k.Nodes)-1] }

// String describes the kernel for traces and debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel(%s, %d ops)", k.Name, len(k.Nodes))
}
