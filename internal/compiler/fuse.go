package compiler

import (
	"fmt"

	"duet/internal/graph"
	"duet/internal/ops"
	"duet/internal/tensor"
)

// Kernel is one launchable unit in a compiled module: an anchor operator
// plus the elementwise epilogue fused into it (or a lone operator when
// fusion is off / impossible). Cost reflects the fused launch structure —
// this is precisely why compiler-aware profiling matters: the same subgraph
// has different launch counts and memory traffic after fusion (§III-A).
type Kernel struct {
	Name  string
	Nodes []graph.NodeID // execution order; Nodes[0] is the group leader
	Cost  ops.Cost
	// Fused, when non-nil, lowers the whole group to a single fused-epilogue
	// GEMM call (tensor.LinearEpInto) instead of op-by-op dispatch. Only set
	// when the epilogue kernel reproduces the group bit-exactly.
	Fused *FusedLinear
}

// FusedLinear is the lowered form of a dense-led fusion group whose epilogue
// the tensor layer implements natively: dense, dense+bias-add, dense+act and
// dense+bias-add+act all collapse to one LinearEpInto call, eliminating the
// intermediate activation tensors entirely.
type FusedLinear struct {
	X, W    graph.NodeID
	Bias    graph.NodeID // valid only when HasBias
	HasBias bool
	Ep      tensor.Epilogue
}

// lowerFusedLinear matches a fusion group against the epilogue patterns the
// GEMM kernel supports. Lowering is all-or-nothing: if any group member
// falls outside [dense][, add(·, bias[N])][, relu|sigmoid], the group keeps
// generic op-by-op dispatch. A bias add folds only when the dense carries no
// bias operand of its own, and only in the canonical add(tail, bias) operand
// order — bias length must equal the dense output width exactly (scalar
// broadcasts stay generic).
func lowerFusedLinear(g *graph.Graph, group []graph.NodeID) *FusedLinear {
	lead := g.Node(group[0])
	if lead.Op != "dense" {
		return nil
	}
	f := &FusedLinear{X: lead.Inputs[0], W: lead.Inputs[1]}
	if len(lead.Inputs) == 3 {
		f.HasBias, f.Bias = true, lead.Inputs[2]
	}
	tail := group[0]
	i := 1
	if i < len(group) {
		n := g.Node(group[i])
		if n.Op == "add" && !f.HasBias && n.Inputs[0] == tail {
			if b := g.Node(n.Inputs[1]); len(b.Shape) == 1 && len(lead.Shape) == 2 && b.Shape[0] == lead.Shape[1] {
				f.HasBias, f.Bias = true, n.Inputs[1]
				tail = group[i]
				i++
			}
		}
	}
	if i < len(group) {
		n := g.Node(group[i])
		if len(n.Inputs) == 1 && n.Inputs[0] == tail {
			switch n.Op {
			case "relu":
				f.Ep = tensor.EpReLU
				i++
			case "sigmoid":
				f.Ep = tensor.EpSigmoid
				i++
			}
		}
	}
	if i != len(group) {
		return nil
	}
	return f
}

// Fuse groups the graph's compute nodes into kernels. When enabled, an
// anchor (dense/conv2d/lstm/...) or elementwise leader absorbs a following
// chain of elementwise ops, provided each absorbed op is the sole consumer
// of the group's current tail and all its other operands are consts or
// values produced outside the group (which become kernel inputs).
func Fuse(g *graph.Graph, enabled bool) []Kernel {
	consumers := g.Consumers()
	assigned := make(map[graph.NodeID]bool)
	declared := make(map[graph.NodeID]bool)
	for _, o := range g.Outputs() {
		declared[o] = true
	}
	var kernels []Kernel

	for _, id := range g.TopoSort() {
		n := g.Node(id)
		if n.IsInput() || n.IsConst() || assigned[id] {
			continue
		}
		group := []graph.NodeID{id}
		assigned[id] = true
		cost := NodeCost(g, id)

		if enabled {
			tail := id
			for {
				// The tail's value must stay private to the group: exactly
				// one consumer and not a declared output.
				if declared[tail] || len(consumers[tail]) != 1 {
					break
				}
				next := consumers[tail][0]
				nn := g.Node(next)
				if assigned[next] {
					break
				}
				def, err := ops.Lookup(nn.Op)
				if err != nil || !def.Elementwise {
					break
				}
				// Other operands must be consts, runtime inputs, or values
				// from kernels already emitted (groups are emitted in leader
				// topological order, so an operand still unassigned would be
				// computed *after* this kernel runs). Operands inside the
				// group other than the tail would break the single-stream
				// epilogue.
				ok := true
				inGroup := make(map[graph.NodeID]bool, len(group))
				for _, m := range group {
					inGroup[m] = true
				}
				for _, in := range nn.Inputs {
					if in == tail {
						continue
					}
					if inGroup[in] {
						ok = false
						break
					}
					if src := g.Node(in); !src.IsInput() && !src.IsConst() && !assigned[in] {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				group = append(group, next)
				assigned[next] = true
				c := NodeCost(g, next)
				// Fusion eliminates the intermediate tensor round trip and
				// the separate launch: add the epilogue FLOPs, keep the
				// leader's launch count and memory traffic, and let the
				// widest member determine available parallelism.
				cost.FLOPs += c.FLOPs
				if c.Parallelism > cost.Parallelism {
					cost.Parallelism = c.Parallelism
				}
				if c.SeqSteps > cost.SeqSteps {
					cost.SeqSteps = c.SeqSteps
				}
				tail = next
			}
			if len(group) > 1 && cost.Launches == 0 {
				// A structural leader (reshape/flatten) that absorbed real
				// work still launches one kernel.
				cost.Launches = 1
			}
		}

		kernels = append(kernels, Kernel{
			Name:  g.Node(group[0]).Name,
			Nodes: group,
			Cost:  cost,
			Fused: lowerFusedLinear(g, group),
		})
	}
	return kernels
}

// Output returns the node whose value the kernel publishes (its last node).
func (k *Kernel) Output() graph.NodeID { return k.Nodes[len(k.Nodes)-1] }

// String describes the kernel for traces and debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("kernel(%s, %d ops)", k.Name, len(k.Nodes))
}
