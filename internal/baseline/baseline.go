// Package baseline models the DL-framework comparison points (PyTorch /
// TensorFlow in the paper's Fig. 11): an operators-in-sequence interpreter
// that runs one unfused kernel per operator on a single device, paying a
// framework dispatch overhead per operator, with no graph-level compiler
// optimization (§III-A's "Operators-in-Sequence scheduling").
package baseline

import (
	"fmt"

	"duet/internal/compiler"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/tensor"
	"duet/internal/vclock"
)

// DefaultPerOpOverhead is the per-operator host dispatch cost of an eager
// framework (interpreter hop, type dispatch, allocator) — roughly the
// ~10 µs/op observed for eager PyTorch.
const DefaultPerOpOverhead vclock.Seconds = 10e-6

// Framework is a single-device, unfused executor for one model.
type Framework struct {
	Name     string
	Module   *compiler.Module
	Platform *device.Platform
	// PerOpOverhead is charged once per operator per inference.
	PerOpOverhead vclock.Seconds

	parent *graph.Graph
}

// New compiles g without graph-level optimizations and returns the
// framework executor.
func New(name string, g *graph.Graph, plat *device.Platform) (*Framework, error) {
	m, err := compiler.Compile(g, compiler.Options{})
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &Framework{
		Name:          name,
		Module:        m,
		Platform:      plat,
		PerOpOverhead: DefaultPerOpOverhead,
		parent:        g,
	}, nil
}

// Latency samples one end-to-end inference time on the given device,
// including moving runtime inputs to the GPU and the result back when
// executing there.
func (f *Framework) Latency(kind device.Kind) vclock.Seconds {
	dev := f.Platform.Device(kind)
	var t vclock.Seconds
	if kind == device.GPU {
		for _, id := range f.Module.Graph.InputIDs() {
			t += f.Platform.Link.SampleTransferTime(f.Module.Graph.DataSize(id))
		}
	}
	for k := range f.Module.Kernels {
		c := f.Module.Kernels[k].Cost
		steps := c.SeqSteps
		if steps < 1 {
			steps = 1
		}
		// Eager frameworks dispatch recurrent cells once per timestep, so
		// the interpreter overhead multiplies by the sequence length.
		t += dev.SampleKernelTime(c) + f.PerOpOverhead*vclock.Seconds(steps)
	}
	if kind == device.GPU {
		for _, o := range f.Module.Graph.Outputs() {
			t += f.Platform.Link.SampleTransferTime(f.Module.Graph.DataSize(o))
		}
	}
	return t
}

// Measure samples runs end-to-end latencies.
func (f *Framework) Measure(kind device.Kind, runs int) []vclock.Seconds {
	out := make([]vclock.Seconds, runs)
	for i := range out {
		out[i] = f.Latency(kind)
	}
	return out
}

// Execute runs the model for real values (device-independent math).
func (f *Framework) Execute(inputs map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	return f.Module.Execute(inputs)
}
