package baseline

import (
	"math"
	"testing"

	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/tensor"
	"duet/internal/vclock"
)

func smallGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("small")
	x := g.AddInput("x", 1, 64)
	w := g.AddConst("w", tensor.Full(0.01, 64, 64))
	d := g.Add("dense", "d", nil, x, w)
	r := g.Add("relu", "r", nil, d)
	s := g.Add("softmax", "s", nil, r)
	g.SetOutputs(s)
	return g
}

func TestFrameworkBuildsUnfused(t *testing.T) {
	fw, err := New("PyTorch", smallGraph(t), device.NewPlatform(0))
	if err != nil {
		t.Fatal(err)
	}
	// No fusion: one kernel per compute op.
	if got := fw.Module.KernelCount(); got != 3 {
		t.Fatalf("kernel count = %d, want 3 (unfused)", got)
	}
}

func TestFrameworkSlowerThanCompiled(t *testing.T) {
	g, err := models.WideDeep(models.DefaultWideDeep())
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New("PyTorch", g, device.NewPlatform(0))
	if err != nil {
		t.Fatal(err)
	}
	// The framework interpreter on one device must be slower than the sum
	// of the optimized kernels on the same device (fusion + no dispatch
	// overhead), which is what TVM-CPU/TVM-GPU measure in Fig. 11.
	cpuFw := fw.Latency(device.CPU)
	var optimized vclock.Seconds
	// Reference: compile fused and sum kernel times directly.
	dev := device.NewCPU()
	for k := range fw.Module.Kernels {
		optimized += dev.KernelTime(fw.Module.Kernels[k].Cost)
	}
	if cpuFw <= optimized {
		t.Fatalf("framework (%v) should exceed raw unfused kernel time (%v)", cpuFw, optimized)
	}
}

func TestGPUPathPaysTransfers(t *testing.T) {
	fw, err := New("TF", smallGraph(t), device.NewPlatform(0))
	if err != nil {
		t.Fatal(err)
	}
	gpu := fw.Latency(device.GPU)
	// Strip overheads: the GPU path must include at least the input and
	// output PCIe base latencies on top of compute.
	minTransfers := 2 * fw.Platform.Link.BaseLatency
	if gpu < minTransfers {
		t.Fatalf("GPU latency %v misses transfer cost (min %v)", gpu, minTransfers)
	}
}

func TestRecurrentOverheadScalesWithSeqLen(t *testing.T) {
	build := func(seq int) *Framework {
		cfg := models.DefaultSiamese()
		cfg.SeqLen = seq
		g, err := models.Siamese(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := New("TF", g, device.NewPlatform(0))
		if err != nil {
			t.Fatal(err)
		}
		return fw
	}
	short := build(10)
	long := build(100)
	ds := long.Latency(device.CPU) - short.Latency(device.CPU)
	// 2 branches × 2 LSTM layers × 90 extra steps × overhead each, plus
	// compute growth: the difference must exceed the pure dispatch part.
	minOverheadGrowth := 2 * 2 * 90 * long.PerOpOverhead
	if ds < minOverheadGrowth {
		t.Fatalf("per-step dispatch not charged: delta %v < %v", ds, minOverheadGrowth)
	}
}

func TestMeasureCountAndDeterminism(t *testing.T) {
	a, err := New("fw", smallGraph(t), device.NewPlatform(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("fw", smallGraph(t), device.NewPlatform(5))
	if err != nil {
		t.Fatal(err)
	}
	sa := a.Measure(device.CPU, 20)
	sb := b.Measure(device.CPU, 20)
	if len(sa) != 20 {
		t.Fatalf("sample count = %d", len(sa))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("framework sampling not deterministic under seed")
		}
	}
}

func TestExecuteRealValues(t *testing.T) {
	fw, err := New("fw", smallGraph(t), device.NewPlatform(0))
	if err != nil {
		t.Fatal(err)
	}
	outs, err := fw.Execute(map[string]*tensor.Tensor{"x": tensor.Full(0.5, 1, 64)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(outs[0].Sum()-1) > 1e-4 {
		t.Fatalf("softmax output sums to %v", outs[0].Sum())
	}
}

func TestNewRejectsBrokenGraph(t *testing.T) {
	g := graph.New("broken")
	x := g.AddInput("x", 1, 4)
	w := g.AddConst("w", tensor.Ones(3, 5))
	d := g.Add("dense", "d", nil, x, w)
	g.SetOutputs(d)
	if _, err := New("fw", g, device.NewPlatform(0)); err == nil {
		t.Fatalf("expected compile error")
	}
}
