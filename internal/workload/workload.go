// Package workload generates deterministic, seeded inference inputs for the
// model zoo — the query streams driving every experiment.
package workload

import (
	"math/rand"

	"duet/internal/models"
	"duet/internal/tensor"
)

// ids returns a (batch, seqLen) tensor of integer token ids < vocab, stored
// as float32 (the embedding operator's input convention).
func ids(rng *rand.Rand, batch, seqLen, vocab int) *tensor.Tensor {
	t := tensor.New(batch, seqLen)
	d := t.Data()
	for i := range d {
		d[i] = float32(rng.Intn(vocab))
	}
	return t
}

// WideDeepInputs generates one Wide&Deep query batch.
func WideDeepInputs(cfg models.WideDeepConfig, seed int64) map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*tensor.Tensor{
		"wide.x":    tensor.Rand(rng, 1, cfg.Batch, cfg.WideFeatures),
		"deep.x":    tensor.Rand(rng, 1, cfg.Batch, cfg.DeepFeatures),
		"rnn.ids":   ids(rng, cfg.Batch, cfg.SeqLen, cfg.Vocab),
		"cnn.image": tensor.Rand(rng, 1, cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize),
	}
}

// SiameseInputs generates one query/passage pair.
func SiameseInputs(cfg models.SiameseConfig, seed int64) map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*tensor.Tensor{
		"query.ids":   ids(rng, cfg.Batch, cfg.SeqLen, cfg.Vocab),
		"passage.ids": ids(rng, cfg.Batch, cfg.SeqLen, cfg.Vocab),
	}
}

// MTDNNInputs generates one token sequence.
func MTDNNInputs(cfg models.MTDNNConfig, seed int64) map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*tensor.Tensor{
		"tokens": ids(rng, cfg.Batch, cfg.SeqLen, cfg.Vocab),
	}
}

// ResNetInputs generates one image batch.
func ResNetInputs(cfg models.ResNetConfig, seed int64) map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*tensor.Tensor{
		"image": tensor.Rand(rng, 1, cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize),
	}
}

// WideDeepStream returns the serving load generator's per-request input
// factory: request i draws its deterministic inputs from seed base+i, so
// repeated runs — and per-request Infer baselines — see identical values.
func WideDeepStream(cfg models.WideDeepConfig, base int64) func(i int) map[string]*tensor.Tensor {
	return func(i int) map[string]*tensor.Tensor {
		return WideDeepInputs(cfg, base+int64(i))
	}
}
