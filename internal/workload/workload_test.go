package workload

import (
	"testing"

	"duet/internal/compiler"
	"duet/internal/models"
	"duet/internal/tensor"
)

func TestWideDeepInputsMatchModel(t *testing.T) {
	cfg := models.DefaultWideDeep()
	g, err := models.WideDeep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := compiler.InferShapes(g); err != nil {
		t.Fatal(err)
	}
	inputs := WideDeepInputs(cfg, 1)
	for _, id := range g.InputIDs() {
		n := g.Node(id)
		in, ok := inputs[n.Name]
		if !ok {
			t.Fatalf("missing input %q", n.Name)
		}
		if !tensor.ShapeEq(in.Shape(), n.Shape) {
			t.Fatalf("input %q shape %v, want %v", n.Name, in.Shape(), n.Shape)
		}
	}
}

func TestIdsWithinVocab(t *testing.T) {
	cfg := models.DefaultSiamese()
	inputs := SiameseInputs(cfg, 9)
	for name, in := range inputs {
		for _, v := range in.Data() {
			if v < 0 || int(v) >= cfg.Vocab || v != float32(int(v)) {
				t.Fatalf("%s contains invalid id %v", name, v)
			}
		}
	}
}

func TestInputsDeterministic(t *testing.T) {
	cfg := models.DefaultMTDNN()
	a := MTDNNInputs(cfg, 5)
	b := MTDNNInputs(cfg, 5)
	if !tensor.AllClose(a["tokens"], b["tokens"], 0, 0) {
		t.Fatalf("inputs differ under same seed")
	}
	c := MTDNNInputs(cfg, 6)
	if tensor.AllClose(a["tokens"], c["tokens"], 0, 0) {
		t.Fatalf("different seeds should differ")
	}
}

func TestResNetInputs(t *testing.T) {
	cfg := models.DefaultResNet(18)
	in := ResNetInputs(cfg, 2)
	if !tensor.ShapeEq(in["image"].Shape(), []int{1, 3, 224, 224}) {
		t.Fatalf("image shape = %v", in["image"].Shape())
	}
}
