// Package obs is DUET's dependency-free observability layer: a metrics
// registry (counters, gauges, latency histograms with exact percentile
// readout) and a per-request span recorder that generalises the runtime's
// Chrome-trace export. Everything is safe for concurrent use, and every
// instrument is nil-safe: a nil *Registry hands out nil instruments whose
// methods are no-ops, so instrumented hot paths pay only a couple of nil
// checks when observability is not enabled.
//
// The registry exposes its contents three ways: Prometheus text-format
// exposition (WritePrometheus), a JSON snapshot (Snapshot/WriteJSON) used
// by the serving example's live table, and direct programmatic readout
// (Counter.Value, Histogram.Quantile, ...).
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d. No-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move both ways (queue depth, busy
// seconds, breaker state).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds d. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Max atomically raises the gauge to v if v is larger. No-op on nil.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// DefaultLatencyBuckets are exposition bucket bounds (seconds) spanning the
// virtual-clock latencies DUET's models produce, 1 µs .. ~4 s in powers of
// four.
var DefaultLatencyBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4,
}

// Histogram records a latency distribution two ways at once: fixed
// cumulative buckets for Prometheus exposition, and the exact samples for
// percentile readout. Quantile uses the same nearest-rank rule as
// stats.Summarize / vclock.Percentile, so histogram P50/P99/P99.9 agree
// exactly with the offline summaries on identical samples.
//
// Samples are retained until Reset; a serving layer that wants windowed
// percentiles snapshots and resets per window. Memory is 8 bytes per
// observation.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // bucket upper bounds, ascending
	counts  []uint64  // per-bucket (non-cumulative) counts; len(bounds)+1 with +Inf last
	samples []float64
	sum     float64
	sorted  bool
}

// newHistogram returns a histogram with the given bucket bounds (sorted
// copy; DefaultLatencyBuckets when empty).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i]++
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the p-th percentile (0..100) by nearest rank over the
// exact samples — the same rule as vclock.Percentile, so the histogram and
// stats.Summarize agree on identical data. It returns 0 (ok=false) when no
// samples were observed.
func (h *Histogram) Quantile(p float64) (float64, bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0, false
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	return sortedQuantile(h.samples, p), true
}

// sortedQuantile is nearest-rank percentile over an ascending slice,
// mirroring vclock.Percentile (including its floating-point rank guard).
func sortedQuantile(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s))-1e-9)) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Reset discards all observations (window rollover). No-op on nil.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sum = 0
	h.sorted = false
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.mu.Unlock()
}

// buckets returns (upper bound, cumulative count) pairs plus the total,
// for exposition. The last bound is +Inf.
func (h *Histogram) buckets() (bounds []float64, cumulative []uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	cumulative = make([]uint64, len(h.counts))
	var c uint64
	for i, n := range h.counts {
		c += n
		cumulative[i] = c
	}
	return bounds, cumulative
}

// Registry holds named instruments. The zero value is ready to use; a nil
// *Registry hands out nil instruments (all methods no-ops), which is how
// uninstrumented hot paths stay free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = map[string]*Gauge{}
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (DefaultLatencyBuckets when bounds is empty; bounds
// are ignored for an existing histogram). A nil registry returns a nil
// (no-op) histogram.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = map[string]*Histogram{}
	}
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Series formats a metric name with label pairs in canonical (sorted,
// Prometheus-compatible) form: Series("duet_runs_total", "device", "cpu0")
// → `duet_runs_total{device="cpu0"}`. Odd trailing pairs are dropped.
func Series(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
