package obs

import (
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"duet/internal/stats"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total")
	c.Inc()
	c.Add(4)
	if got := r.Counter("runs_total").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	g.Max(10)
	g.Max(7)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge after Max = %v, want 10", got)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if _, ok := r.Histogram("z").Quantile(50); ok {
		t.Fatalf("nil histogram reported samples")
	}
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatalf("nil instruments must read as zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v out=%q", err, sb.String())
	}
}

// TestHistogramAgreesWithSummarize is the acceptance check: histogram
// P50/P99/P99.9 must agree exactly with stats.Summarize on identical
// samples.
func TestHistogramAgreesWithSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 10, 999, 1000, 5000} {
		h := newHistogram(nil)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.ExpFloat64() * 1e-3
			h.Observe(samples[i])
		}
		s := stats.Summarize(samples)
		for _, q := range []struct {
			p    float64
			want float64
		}{{0, s.Min}, {50, s.P50}, {99, s.P99}, {99.9, s.P999}, {100, s.Max}} {
			got, ok := h.Quantile(q.p)
			if !ok {
				t.Fatalf("n=%d p=%v: no samples", n, q.p)
			}
			if got != q.want {
				t.Fatalf("n=%d p=%v: histogram %v != Summarize %v", n, q.p, got, q.want)
			}
		}
		if h.Count() != n {
			t.Fatalf("count = %d, want %d", h.Count(), n)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	if h.Count() != 2 || h.Sum() != 3.5 {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset did not clear: %d/%v", h.Count(), h.Sum())
	}
	if _, ok := h.Quantile(50); ok {
		t.Fatalf("quantile after reset should report no samples")
	}
}

func TestSeries(t *testing.T) {
	got := Series("duet_runs_total", "device", "cpu0", "model", "wide&deep")
	want := `duet_runs_total{device="cpu0",model="wide&deep"}`
	if got != want {
		t.Fatalf("Series = %s, want %s", got, want)
	}
	if Series("plain") != "plain" {
		t.Fatalf("label-free series changed: %s", Series("plain"))
	}
	// Keys sort canonically regardless of argument order.
	if Series("m", "b", "2", "a", "1") != `m{a="1",b="2"}` {
		t.Fatalf("labels not sorted: %s", Series("m", "b", "2", "a", "1"))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("duet_runs_total").Add(3)
	r.Counter(Series("duet_faults_total", "kind", "kernel")).Add(2)
	r.Gauge(Series("duet_busy_seconds", "device", "cpu0")).Set(0.25)
	h := r.Histogram("duet_latency_seconds", 0.001, 0.01)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)
	hl := r.Histogram(Series("duet_wait_seconds", "path", "policy"), 0.1)
	hl.Observe(0.05)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE duet_runs_total counter",
		"duet_runs_total 3",
		`duet_faults_total{kind="kernel"} 2`,
		"# TYPE duet_busy_seconds gauge",
		`duet_busy_seconds{device="cpu0"} 0.25`,
		"# TYPE duet_latency_seconds histogram",
		`duet_latency_seconds_bucket{le="0.001"} 1`,
		`duet_latency_seconds_bucket{le="0.01"} 2`,
		`duet_latency_seconds_bucket{le="+Inf"} 3`,
		"duet_latency_seconds_sum 0.5055",
		"duet_latency_seconds_count 3",
		// A labelled histogram keeps the suffix on the metric name and
		// merges le into the existing label set.
		"# TYPE duet_wait_seconds histogram",
		`duet_wait_seconds_bucket{path="policy",le="0.1"} 1`,
		`duet_wait_seconds_bucket{path="policy",le="+Inf"} 1`,
		`duet_wait_seconds_sum{path="policy"} 0.05`,
		`duet_wait_seconds_count{path="policy"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2.5)
	h := r.Histogram("h")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if snap.Counters["c"] != 1 || snap.Gauges["g"] != 2.5 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
	hs := snap.Histograms["h"]
	if hs.Count != 100 || hs.P50 != 50 || hs.P99 != 99 || hs.Min != 1 || hs.Max != 100 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
}

// TestConcurrency hammers every instrument from many goroutines; run under
// -race this is the registry's race-cleanliness check.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("m").Max(rng.Float64())
				r.Histogram("h").Observe(rng.Float64())
				if i%97 == 0 {
					r.Snapshot()
					r.Histogram("h").Quantile(99)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*500 {
		t.Fatalf("lost counter increments: %d", got)
	}
	if got := r.Gauge("g").Value(); got != 8*500 {
		t.Fatalf("lost gauge adds: %v", got)
	}
	if got := r.Histogram("h").Count(); got != 8*500 {
		t.Fatalf("lost observations: %d", got)
	}
}
