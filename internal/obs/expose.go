package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// baseName strips a series' label set: `a_total{x="y"}` → `a_total`.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// splitSeries separates a series into its metric name and label set (the
// latter including braces, or empty): `a{x="y"}` → (`a`, `{x="y"}`).
func splitSeries(series string) (base, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i], series[i:]
	}
	return series, ""
}

// suffixed moves a histogram suffix inside the series' label position:
// (`a{x="y"}`, `_sum`) → `a_sum{x="y"}` — the exposition format requires
// the suffix on the metric name, not after the labels.
func suffixed(series, suffix string) string {
	base, labels := splitSeries(series)
	return base + suffix + labels
}

// withLabel appends one label to a series name, merging into an existing
// label set: `a{x="y"}` + (le, 5) → `a{x="y",le="5"}`.
func withLabel(series, key, value string) string {
	label := key + `="` + escapeLabel(value) + `"`
	if strings.HasSuffix(series, "}") {
		return series[:len(series)-1] + "," + label + "}"
	}
	return series + "{" + label + "}"
}

// formatBound renders a bucket upper bound the way Prometheus expects
// ("+Inf" for the overflow bucket, shortest float otherwise).
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (v0.0.4): counters as `# TYPE ... counter`, gauges as gauges, and
// histograms as cumulative `_bucket{le=...}` series with `_sum` and
// `_count`. Series are ordered by name so the output is diffable. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make([]string, 0, len(r.counters))
	for name := range r.counters {
		counters = append(counters, name)
	}
	gauges := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	hists := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		hists = append(hists, name)
	}
	r.mu.Unlock()
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)

	typed := map[string]bool{}
	writeType := func(series, kind string) error {
		base := baseName(series)
		if typed[base] {
			return nil
		}
		typed[base] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	for _, name := range counters {
		if err := writeType(name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		if err := writeType(name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", name, r.Gauge(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range hists {
		if err := writeType(name, "histogram"); err != nil {
			return err
		}
		h := r.Histogram(name)
		bounds, cum := h.buckets()
		for i, b := range bounds {
			series := withLabel(suffixed(name, "_bucket"), "le", formatBound(b))
			if _, err := fmt.Fprintf(w, "%s %d\n", series, cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", suffixed(name, "_sum"), h.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", suffixed(name, "_count"), h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// HistogramSnapshot is the JSON form of one histogram's summary.
type HistogramSnapshot struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is a point-in-time JSON-marshalable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. A nil registry
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for name, c := range counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for name, g := range gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for name, h := range hists {
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			if hs.Count > 0 {
				hs.Mean = hs.Sum / float64(hs.Count)
				hs.Min, _ = h.Quantile(0)
				hs.Max, _ = h.Quantile(100)
				hs.P50, _ = h.Quantile(50)
				hs.P99, _ = h.Quantile(99)
				hs.P999, _ = h.Quantile(99.9)
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
