package obs

import (
	"encoding/json"
	"sync"
)

// Span is one interval on a named track — a kernel, a transfer, a fault,
// a backoff pause, or a whole request. Times are in (virtual) seconds.
type Span struct {
	// Name labels the span (subgraph name, "xfer:cpu0→gpu0:x", ...).
	Name string `json:"name"`
	// Track is the resource the span occupied (device, link, or a logical
	// track like "requests").
	Track string `json:"track"`
	// Category groups spans for rendering: "compute", "transfer", "fault",
	// "request", ... Free-form; the Chrome export passes it through.
	Category string  `json:"category"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
}

// Duration returns End-Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// Trace is a concurrency-safe span recorder for one request (or one
// experiment window). The zero value is ready to use; a nil *Trace is a
// no-op recorder.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Record appends one span. No-op on a nil trace.
func (t *Trace) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// traceEvent is one Chrome trace-event ("catapult") entry. Timestamps are
// microseconds.
type traceEvent struct {
	Name  string  `json:"name"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"`
	Dur   float64 `json:"dur"`
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
	Cat   string  `json:"cat"`
}

// ChromeTrace renders spans in the Chrome trace-event JSON format (load
// via chrome://tracing or https://ui.perfetto.dev), one thread per track
// in first-appearance order.
func ChromeTrace(spans []Span) ([]byte, error) {
	tids := map[string]int{}
	nextTID := 1
	events := make([]traceEvent, 0, len(spans))
	for _, s := range spans {
		tid, ok := tids[s.Track]
		if !ok {
			tid = nextTID
			nextTID++
			tids[s.Track] = tid
		}
		cat := s.Category
		if cat == "" {
			cat = "compute"
		}
		events = append(events, traceEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    s.Start * 1e6,
			Dur:   (s.End - s.Start) * 1e6,
			PID:   1,
			TID:   tid,
			Cat:   cat,
		})
	}
	return json.MarshalIndent(map[string]interface{}{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	}, "", "  ")
}

// ChromeTrace renders the recorded spans; see the package-level function.
func (t *Trace) ChromeTrace() ([]byte, error) { return ChromeTrace(t.Spans()) }
