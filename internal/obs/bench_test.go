package obs

import "testing"

// BenchmarkNoOpPath measures the cost an uninstrumented hot path pays for
// carrying obs calls: a nil registry handing out nil instruments. This must
// stay in the low-nanosecond range so attaching the hooks to Run /
// RunWithPolicy is free when observability is off.
func BenchmarkNoOpPath(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("duet_runs_total").Inc()
		r.Gauge("duet_busy_seconds").Add(1e-3)
		r.Histogram("duet_latency_seconds").Observe(1e-3)
	}
}

// BenchmarkCachedNoOp is the pattern the runtime actually uses: instruments
// resolved once per run, nil-checked per event.
func BenchmarkCachedNoOp(b *testing.B) {
	var r *Registry
	c := r.Counter("duet_runs_total")
	h := r.Histogram("duet_latency_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1e-3)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-6)
	}
}
