package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestTraceRecordAndChrome(t *testing.T) {
	tr := NewTrace()
	tr.Record(Span{Name: "rnn_0", Track: "cpu0", Category: "compute", Start: 0, End: 1e-3})
	tr.Record(Span{Name: "xfer:cpu0→gpu0:x", Track: "pcie", Category: "transfer", Start: 1e-3, End: 1.5e-3})
	tr.Record(Span{Name: "fault:kernel:conv_1", Track: "gpu0", Category: "fault", Start: 1.5e-3, End: 2e-3})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	data, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
			Cat  string  `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	cats := map[string]bool{}
	tracks := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Dur < 0 || ev.TS < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
		cats[ev.Cat] = true
		tracks[ev.TID] = true
	}
	for _, c := range []string{"compute", "transfer", "fault"} {
		if !cats[c] {
			t.Fatalf("category %s missing", c)
		}
	}
	if len(tracks) != 3 {
		t.Fatalf("expected 3 distinct tracks, got %d", len(tracks))
	}
}

func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.Record(Span{Name: "x"})
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatalf("nil trace recorded something")
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record(Span{Name: "s", Track: "cpu0", Start: float64(i), End: float64(i + 1)})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*200 {
		t.Fatalf("lost spans: %d", tr.Len())
	}
}
