package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"duet/internal/device"
	"duet/internal/models"
	"duet/internal/stats"
	"duet/internal/vclock"
)

func init() {
	register("fig13", "Comparison of scheduling algorithms on Wide&Deep", Fig13)
	register("fig14", "Wide&Deep latency varying stacked RNN layers", Fig14)
	register("fig15", "Wide&Deep latency varying CNN (ResNet) depth", Fig15)
	register("fig16", "Wide&Deep latency varying FFN hidden layers", Fig16)
	register("fig17", "Wide&Deep latency varying batch size", Fig17)
}

// Fig13Result compares the scheduling schemes of §VI-C.
type Fig13Result struct {
	Random           vclock.Seconds
	RoundRobin       vclock.Seconds
	RandomCorrection vclock.Seconds
	GreedyCorrection vclock.Seconds
	Ideal            vclock.Seconds
}

// Fig13Data measures every scheduling scheme on Wide&Deep. Random is
// averaged over several draws.
func Fig13Data(cfg Config) (*Fig13Result, error) {
	g, err := models.WideDeep(models.DefaultWideDeep())
	if err != nil {
		return nil, err
	}
	e, err := buildEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	s := e.Scheduler
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Fig13Result{}

	var randomSum vclock.Seconds
	const draws = 10
	for i := 0; i < draws; i++ {
		lat, err := s.Measure(s.Random(rng))
		if err != nil {
			return nil, err
		}
		randomSum += lat
	}
	res.Random = randomSum / draws

	if res.RoundRobin, err = s.Measure(s.RoundRobin()); err != nil {
		return nil, err
	}
	rc, err := s.RandomCorrection(rand.New(rand.NewSource(cfg.Seed + 1)))
	if err != nil {
		return nil, err
	}
	if res.RandomCorrection, err = s.Measure(rc); err != nil {
		return nil, err
	}
	gc, err := s.GreedyCorrection()
	if err != nil {
		return nil, err
	}
	if res.GreedyCorrection, err = s.Measure(gc); err != nil {
		return nil, err
	}
	if _, res.Ideal, err = s.Ideal(); err != nil {
		return nil, err
	}
	return res, nil
}

// Fig13 renders the scheduling-algorithm comparison (Fig. 13).
func Fig13(cfg Config, w io.Writer) error {
	header(w, "fig13", "Scheduling algorithms on Wide&Deep (ms)")
	r, err := Fig13Data(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-20s %9s\n", "algorithm", "latency")
	fmt.Fprintf(w, "%-20s %9s\n", "Random (avg 10)", ms(r.Random))
	fmt.Fprintf(w, "%-20s %9s\n", "Round-Robin", ms(r.RoundRobin))
	fmt.Fprintf(w, "%-20s %9s\n", "Random+Correction", ms(r.RandomCorrection))
	fmt.Fprintf(w, "%-20s %9s\n", "Greedy+Correction", ms(r.GreedyCorrection))
	fmt.Fprintf(w, "%-20s %9s\n", "Ideal (exhaustive)", ms(r.Ideal))
	fmt.Fprintf(w, "\npaper shape: correction-based schedules beat Random/Round-Robin;\n             greedy+correction finds the optimal schedule\n")
	return nil
}

// SweepPoint is one x-value of a Fig. 14-17 sweep.
type SweepPoint struct {
	X      int
	TVMCPU vclock.Seconds
	TVMGPU vclock.Seconds
	DUET   vclock.Seconds
}

// sweep measures TVM-CPU/TVM-GPU/DUET for each Wide&Deep variant.
func sweep(cfg Config, xs []int, vary func(models.WideDeepConfig, int) models.WideDeepConfig) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, x := range xs {
		mc := vary(models.DefaultWideDeep(), x)
		g, err := models.WideDeep(mc)
		if err != nil {
			return nil, err
		}
		e, err := buildEngine(g, cfg)
		if err != nil {
			return nil, err
		}
		duet, err := e.Measure(cfg.Runs)
		if err != nil {
			return nil, err
		}
		cpu, err := e.MeasureUniform(device.CPU, cfg.Runs)
		if err != nil {
			return nil, err
		}
		gpu, err := e.MeasureUniform(device.GPU, cfg.Runs)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{
			X:      x,
			TVMCPU: vclock.Mean(cpu),
			TVMGPU: vclock.Mean(gpu),
			DUET:   vclock.Mean(duet),
		})
	}
	return points, nil
}

func renderSweep(w io.Writer, xname string, points []SweepPoint) {
	fmt.Fprintf(w, "%-10s %9s %9s %9s %12s %12s\n", xname, "TVM-CPU", "TVM-GPU", "DUET", "vs GPU", "vs CPU")
	for _, p := range points {
		fmt.Fprintf(w, "%-10d %9s %9s %9s %11.2fx %11.2fx\n",
			p.X, ms(p.TVMCPU), ms(p.TVMGPU), ms(p.DUET),
			stats.Speedup(p.TVMGPU, p.DUET), stats.Speedup(p.TVMCPU, p.DUET))
	}
}

// Fig14Data sweeps the stacked-RNN depth (1, 2, 4, 8 layers).
func Fig14Data(cfg Config) ([]SweepPoint, error) {
	return sweep(cfg, []int{1, 2, 4, 8}, func(c models.WideDeepConfig, x int) models.WideDeepConfig {
		c.RNNLayers = x
		return c
	})
}

// Fig14 renders the RNN-depth sweep (Fig. 14).
func Fig14(cfg Config, w io.Writer) error {
	header(w, "fig14", "Wide&Deep: varying stacked RNN layers")
	points, err := Fig14Data(cfg)
	if err != nil {
		return err
	}
	renderSweep(w, "rnn_layers", points)
	fmt.Fprintf(w, "\npaper shape: 2.3-2.5x vs TVM-GPU, 2.9-9.8x vs TVM-CPU; GPU degrades fastest\n")
	return nil
}

// Fig15Data sweeps the ResNet encoder depth (18, 34, 50, 101).
func Fig15Data(cfg Config) ([]SweepPoint, error) {
	return sweep(cfg, []int{18, 34, 50, 101}, func(c models.WideDeepConfig, x int) models.WideDeepConfig {
		c.CNNDepth = x
		return c
	})
}

// Fig15 renders the CNN-depth sweep (Fig. 15).
func Fig15(cfg Config, w io.Writer) error {
	header(w, "fig15", "Wide&Deep: varying CNN (ResNet) depth")
	points, err := Fig15Data(cfg)
	if err != nil {
		return err
	}
	renderSweep(w, "cnn_depth", points)
	fmt.Fprintf(w, "\npaper shape: TVM-CPU degrades fastest; DUET flat while CNN hides under RNN,\n             then grows once the GPU-side CNN dominates\n")
	return nil
}

// Fig16Data sweeps the FFN hidden-layer count (1, 2, 4, 8).
func Fig16Data(cfg Config) ([]SweepPoint, error) {
	return sweep(cfg, []int{1, 2, 4, 8}, func(c models.WideDeepConfig, x int) models.WideDeepConfig {
		c.FFNHidden = x
		return c
	})
}

// Fig16 renders the FFN-depth sweep (Fig. 16).
func Fig16(cfg Config, w io.Writer) error {
	header(w, "fig16", "Wide&Deep: varying FFN hidden layers")
	points, err := Fig16Data(cfg)
	if err != nil {
		return err
	}
	renderSweep(w, "ffn_hidden", points)
	fmt.Fprintf(w, "\npaper shape: execution time barely changes — GEMMs are fast on both devices\n")
	return nil
}

// Fig17Data sweeps the batch size (2, 4, 8, 16, 32); the paper freezes a
// model per batch size because TVM lacked dynamic batching.
func Fig17Data(cfg Config) ([]SweepPoint, error) {
	return sweep(cfg, []int{2, 4, 8, 16, 32}, func(c models.WideDeepConfig, x int) models.WideDeepConfig {
		c.Batch = x
		return c
	})
}

// Fig17 renders the batch-size sweep (Fig. 17).
func Fig17(cfg Config, w io.Writer) error {
	header(w, "fig17", "Wide&Deep: varying batch size")
	points, err := Fig17Data(cfg)
	if err != nil {
		return err
	}
	renderSweep(w, "batch", points)
	fmt.Fprintf(w, "\npaper shape: speedups pronounced at small batch (≈1.5x at batch 2),\n             diminishing as the GPU's large-batch strength grows\n")
	return nil
}
