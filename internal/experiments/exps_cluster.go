package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"duet/internal/cluster"
	"duet/internal/faults"
	"duet/internal/models"
	"duet/internal/obs"
	"duet/internal/serve"
	"duet/internal/tensor"
	"duet/internal/vclock"
	"duet/internal/workload"
)

// ClusterLoad shapes the cluster fault-tolerance benchmark: the fabric's
// size, the request stream, and the chaos schedule aimed at it. Every knob
// is surfaced as a duet-bench flag.
type ClusterLoad struct {
	// Nodes is the serving-node count.
	Nodes int `json:"nodes"`
	// Requests is the request-stream length per run.
	Requests int `json:"requests"`
	// QPS is the Poisson offered load; 0 sends the stream as one burst.
	QPS float64 `json:"qps"`
	// Sessions is how many sticky sessions the stream rotates through.
	Sessions int `json:"sessions"`
	// CrashAt and CrashFor schedule the chaos run's node crash: the primary
	// of the first session's failover chain goes down at CrashAt for
	// CrashFor (0 = stays down). The victim is chosen from the routing
	// table, so the crash is guaranteed to hit owned traffic.
	CrashAt  vclock.Seconds `json:"crash_at_s"`
	CrashFor vclock.Seconds `json:"crash_for_s"`
	// LossProb drops each network message with this probability (seeded).
	LossProb float64 `json:"loss_prob"`
}

// DefaultClusterLoad is the committed-baseline shape: three nodes, a burst
// of 24 requests over four sessions, the first session's primary crashed
// permanently at 2 virtual ms, and 5% message loss.
func DefaultClusterLoad() ClusterLoad {
	return ClusterLoad{Nodes: 3, Requests: 24, Sessions: 4, CrashAt: 2e-3, LossProb: 0.05}
}

// ClusterReport is the machine-readable fault-tolerance benchmark: the same
// request stream served fault-free and under the chaos schedule, plus the
// invariants the fabric is built around — no lost or duplicated-to-caller
// responses, bit-identical outputs across the two runs for every request
// both delivered, and a byte-identical event trace when the chaos run is
// replayed. Committed as BENCH_cluster.json so failover overhead and
// delivered-under-chaos counts are diffable across revisions.
type ClusterReport struct {
	Model string      `json:"model"`
	Load  ClusterLoad `json:"load"`
	// Victim is the node the chaos schedule crashes (the first session's
	// primary, read from the routing table).
	Victim int `json:"victim"`
	// Replication and VNodes echo the verified routing table's shape.
	Replication int `json:"replication"`
	VNodes      int `json:"vnodes"`

	FaultFree *cluster.Report `json:"fault_free"`
	Chaos     *cluster.Report `json:"chaos"`

	// OutputsBitIdentical reports that every request delivered OK in both
	// runs produced byte-for-byte equal output tensors, whichever node
	// served it.
	OutputsBitIdentical bool `json:"outputs_bit_identical"`
	// TraceDeterministic reports that a second chaos run replayed the first
	// one's event trace byte-for-byte.
	TraceDeterministic bool `json:"trace_deterministic"`
	// DeliveredUnderChaos is the chaos run's OK fraction — the headline
	// availability number under the committed fault schedule.
	DeliveredUnderChaos float64 `json:"delivered_under_chaos"`

	// Metrics snapshots the cluster_* instrument families from the chaos
	// run, so the metric surface is part of the baseline.
	Metrics obs.Snapshot `json:"metrics"`
}

// BuildClusterReport measures the fabric on the reduced Wide&Deep: a
// fault-free run for the output baseline, the chaos run, and a replay of
// the chaos run for the determinism check.
func BuildClusterReport(cfg Config, load ClusterLoad) (*ClusterReport, error) {
	def := DefaultClusterLoad()
	if load.Nodes <= 0 {
		load.Nodes = def.Nodes
	}
	if load.Requests <= 0 {
		load.Requests = def.Requests
	}
	if load.Sessions <= 0 {
		load.Sessions = def.Sessions
	}
	if load.CrashAt <= 0 {
		load.CrashAt = def.CrashAt
	}
	if load.LossProb < 0 {
		load.LossProb = 0
	}

	wd := serveModel()
	g, err := models.WideDeep(wd)
	if err != nil {
		return nil, err
	}
	e, err := buildEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	servers := make([]*serve.Server, load.Nodes)
	for i := range servers {
		srv, err := serve.New(serve.Config{Engine: e, QueueCap: 4 * load.Requests, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		servers[i] = srv
	}

	reqs := clusterStream(wd, cfg.Seed, load)

	newCluster := func(in *faults.Injector, reg *obs.Registry) (*cluster.Cluster, error) {
		return cluster.New(cluster.Config{Seed: cfg.Seed, Injector: in, Registry: reg}, servers)
	}

	base, err := newCluster(nil, nil)
	if err != nil {
		return nil, err
	}
	baseRep, baseResps, err := base.Run(reqs)
	if err != nil {
		return nil, fmt.Errorf("fault-free run: %w", err)
	}

	// The chaos schedule aims at owned traffic: the victim is the first
	// session's primary, read from the verified routing table.
	victim := base.Route(sessionKey(0))[0]
	specs := []faults.Spec{faults.Crash(victim, load.CrashAt, load.CrashFor)}
	if load.LossProb > 0 {
		specs = append(specs, faults.MessageLosses(-1, load.LossProb))
	}
	reg := obs.NewRegistry()
	chaos, err := newCluster(faults.New(cfg.Seed+17, specs...), reg)
	if err != nil {
		return nil, err
	}
	chaosRep, chaosResps, err := chaos.Run(reqs)
	if err != nil {
		return nil, fmt.Errorf("chaos run: %w", err)
	}
	replayRep, _, err := chaos.Run(reqs)
	if err != nil {
		return nil, fmt.Errorf("chaos replay: %w", err)
	}

	m := base.ShardMap()
	rep := &ClusterReport{
		Model:               g.Name,
		Load:                load,
		Victim:              victim,
		Replication:         m.Replication,
		VNodes:              len(m.Slots) / m.Nodes,
		FaultFree:           baseRep,
		Chaos:               chaosRep,
		OutputsBitIdentical: outputsMatch(baseResps, chaosResps),
		TraceDeterministic:  sameTrace(chaosRep.Trace, replayRep.Trace),
		Metrics:             reg.Snapshot(),
	}
	if load.Requests > 0 {
		rep.DeliveredUnderChaos = float64(chaosRep.OK) / float64(load.Requests)
	}
	return rep, nil
}

func sessionKey(i int) string { return fmt.Sprintf("session-%d", i) }

// clusterStream adapts the serve load generator into cluster requests with
// rotating sticky sessions.
func clusterStream(wd models.WideDeepConfig, seed int64, load ClusterLoad) []cluster.Request {
	base := serve.OpenLoop(serve.LoadSpec{
		Requests: load.Requests,
		QPS:      load.QPS,
		Burst:    load.QPS <= 0,
		Seed:     seed + 3,
		Inputs: func(i int) map[string]*tensor.Tensor {
			return workload.WideDeepInputs(wd, seed+1000+int64(i))
		},
	})
	reqs := make([]cluster.Request, len(base))
	for i, r := range base {
		reqs[i] = cluster.Request{
			ID:       r.ID,
			Session:  sessionKey(i % load.Sessions),
			Priority: 1,
			Arrival:  r.Arrival,
			Inputs:   r.Inputs,
		}
	}
	return reqs
}

// outputsMatch reports whether every request delivered OK in both runs
// produced byte-identical outputs.
func outputsMatch(a, b []cluster.Response) bool {
	byID := make(map[int]*cluster.Response, len(a))
	for i := range a {
		byID[a[i].ID] = &a[i]
	}
	for i := range b {
		if b[i].Outcome != serve.OK {
			continue
		}
		ref, ok := byID[b[i].ID]
		if !ok || ref.Outcome != serve.OK {
			continue
		}
		if len(ref.Outputs) != len(b[i].Outputs) {
			return false
		}
		for j := range ref.Outputs {
			if tensor.MaxAbsDiff(ref.Outputs[j], b[i].Outputs[j]) != 0 {
				return false
			}
		}
	}
	return true
}

func sameTrace(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteJSON writes the report as indented JSON.
func (r *ClusterReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the headline comparison.
func (r *ClusterReport) String() string {
	return fmt.Sprintf(
		"cluster %s: %d nodes (replication %d), crash n%d@%.1fms + %.0f%% loss\n  fault-free %s\n  chaos      %s\n  delivered under chaos %.0f%%   outputs bit-identical %v   trace deterministic %v",
		r.Model, r.Load.Nodes, r.Replication, r.Victim, float64(r.Load.CrashAt)*1e3, r.Load.LossProb*100,
		r.FaultFree, r.Chaos,
		r.DeliveredUnderChaos*100, r.OutputsBitIdentical, r.TraceDeterministic)
}
