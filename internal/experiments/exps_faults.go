package experiments

import (
	"errors"
	"fmt"
	"io"

	"duet/internal/device"
	"duet/internal/faults"
	"duet/internal/models"
	"duet/internal/runtime"
	"duet/internal/vclock"
)

func init() {
	register("abl9", "Fault sweep: SLA attainment vs fault rate — failover vs whole-request retry", Abl9)
}

// FaultSweepRow is one fault-rate point of the sweep: SLA attainment and
// mean latency for DUET-with-failover versus the abort-and-retry-whole-
// request baseline under the same fault process.
type FaultSweepRow struct {
	Rate         float64
	FailoverSLA  float64
	AbortSLA     float64
	FailoverMean vclock.Seconds
	AbortMean    vclock.Seconds
	Failovers    int
	BreakerTrips int
}

// abortRetryLimit bounds whole-request restarts so a pathological fault rate
// cannot loop forever; a request that exceeds it keeps its accumulated
// latency (an SLA miss).
const abortRetryLimit = 25

// measureWithRestart samples end-to-end latency under pol, restarting the
// whole request (and paying its wasted virtual time again) whenever the
// policy's own tolerance is exhausted. With a fail-fast policy this is the
// abort-and-retry-whole-request baseline; with a failover policy the
// restart path is the rare last resort after both devices failed.
func measureWithRestart(rt *runtime.Engine, place runtime.Placement, pol runtime.Policy, runs int) ([]vclock.Seconds, error) {
	samples := make([]vclock.Seconds, 0, runs)
	for r := 0; r < runs; r++ {
		total := vclock.Seconds(0)
		for attempt := 0; ; attempt++ {
			res, err := rt.RunWithPolicy(nil, place, pol)
			if err == nil {
				total += res.Latency
				break
			}
			if !errors.Is(err, runtime.ErrExhausted) {
				return nil, err
			}
			total += res.Latency
			if attempt >= abortRetryLimit {
				break
			}
		}
		samples = append(samples, total)
	}
	return samples, nil
}

// attainment is the fraction of samples meeting the SLA (0 for an empty
// window, e.g. a sweep point under a full device outage).
func attainment(samples []vclock.Seconds, sla vclock.Seconds) float64 {
	if len(samples) == 0 {
		return 0
	}
	ok := 0
	for _, s := range samples {
		if s <= sla {
			ok++
		}
	}
	return float64(ok) / float64(len(samples))
}

// FaultSweepData measures SLA attainment against per-kernel/per-transfer
// fault rate on Wide&Deep, comparing DUET's failover runtime against
// abort-and-retry-whole-request. The SLA is 1.5× the no-fault mean latency
// — tight enough that one whole-request restart breaches it while a
// single-subgraph failover usually does not.
func FaultSweepData(cfg Config, rates []float64) ([]FaultSweepRow, vclock.Seconds, error) {
	g, err := models.WideDeep(models.DefaultWideDeep())
	if err != nil {
		return nil, 0, err
	}
	e, err := buildEngine(g, cfg)
	if err != nil {
		return nil, 0, err
	}
	noFault, err := e.Measure(cfg.Runs)
	if err != nil {
		return nil, 0, err
	}
	sla := 1.5 * vclock.Mean(noFault)

	rows := make([]FaultSweepRow, 0, len(rates))
	for ri, rate := range rates {
		specs := []faults.Spec{
			faults.KernelFailures(device.CPU, rate),
			faults.KernelFailures(device.GPU, rate),
			faults.TransferFailures(rate),
		}
		pol := runtime.DefaultPolicy()
		pol.Injector = faults.New(cfg.Seed+int64(ri)+1, specs...)
		failover, err := measureWithRestart(e.Runtime, e.Placement, pol, cfg.Runs)
		if err != nil {
			return nil, 0, err
		}
		var trips, fails int
		{
			// One reported run for the activity counters.
			probe := runtime.DefaultPolicy()
			probe.Injector = faults.New(cfg.Seed+int64(ri)+1, specs...)
			res, err := e.Runtime.RunWithPolicy(nil, e.Placement, probe)
			if err == nil && res.Faults != nil {
				trips, fails = res.Faults.BreakerTrips, res.Faults.Failovers
			}
		}
		abort, err := measureWithRestart(e.Runtime, e.Placement,
			runtime.Policy{Injector: faults.New(cfg.Seed+int64(ri)+1, specs...)}, cfg.Runs)
		if err != nil {
			return nil, 0, err
		}
		rows = append(rows, FaultSweepRow{
			Rate:         rate,
			FailoverSLA:  attainment(failover, sla),
			AbortSLA:     attainment(abort, sla),
			FailoverMean: vclock.Mean(failover),
			AbortMean:    vclock.Mean(abort),
			Failovers:    fails,
			BreakerTrips: trips,
		})
	}
	return rows, sla, nil
}

// Abl9 renders the fault-sweep ablation: the runtime analogue of the
// paper's single-device fallback pays off once faults are injected — at
// every nonzero fault rate, surviving a fault via subgraph failover keeps
// more requests inside the SLA than aborting and re-running the whole
// request.
func Abl9(cfg Config, w io.Writer) error {
	header(w, "abl9", "SLA attainment vs fault rate: failover vs whole-request retry (Wide&Deep)")
	rates := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05}
	rows, sla, err := FaultSweepData(cfg, rates)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "SLA = %sms (1.5× no-fault mean), %d runs per point\n\n", ms(sla), cfg.Runs)
	fmt.Fprintf(w, "%10s | %22s | %22s\n", "", "DUET failover", "abort-and-retry")
	fmt.Fprintf(w, "%10s | %9s %12s | %9s %12s\n", "fault rate", "SLA%", "mean (ms)", "SLA%", "mean (ms)")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.3f | %8.1f%% %12s | %8.1f%% %12s\n",
			r.Rate, r.FailoverSLA*100, ms(r.FailoverMean), r.AbortSLA*100, ms(r.AbortMean))
	}
	fmt.Fprintf(w, "\nretry/failover confines a fault to one subgraph (plus backoff and\nboundary re-transfers); aborting re-pays the whole request per fault\n")
	return nil
}
