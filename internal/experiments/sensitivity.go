package experiments

import (
	"fmt"
	"io"

	"duet/internal/compiler"
	"duet/internal/device"
	"duet/internal/models"
	"duet/internal/partition"
	"duet/internal/profile"
	"duet/internal/runtime"
	"duet/internal/schedule"
	"duet/internal/vclock"
)

func init() {
	register("abl8", "Sensitivity: DUET decisions across platform variants", Abl8)
}

// platformVariant derives a hypothetical platform from the calibrated one.
type platformVariant struct {
	Name  string
	Note  string
	Build func() *device.Platform
}

func platformVariants() []platformVariant {
	scale := func(mutate func(p *device.Platform)) func() *device.Platform {
		return func() *device.Platform {
			p := device.NewPlatform(0)
			mutate(p)
			return p
		}
	}
	return []platformVariant{
		{"baseline", "calibrated Xeon + TITAN V + PCIe 3.0", scale(func(p *device.Platform) {})},
		{"nvlink", "6x link bandwidth, 1/3 base latency", scale(func(p *device.Platform) {
			p.Link.Bandwidth *= 6
			p.Link.BaseLatency /= 3
		})},
		{"slow-launch", "2x GPU kernel-launch overhead", scale(func(p *device.Platform) {
			p.GPU.LaunchOverhead *= 2
		})},
		{"fast-launch", "GPU launch overhead 1 µs (graphs/persistent launch)", scale(func(p *device.Platform) {
			p.GPU.LaunchOverhead = 1e-6
		})},
		{"weak-cpu", "half CPU compute and memory bandwidth", scale(func(p *device.Platform) {
			p.CPU.PeakFLOPS /= 2
			p.CPU.MemBandwidth /= 2
		})},
		{"beefy-cpu", "2x CPU compute and memory bandwidth", scale(func(p *device.Platform) {
			p.CPU.PeakFLOPS *= 2
			p.CPU.MemBandwidth *= 2
		})},
	}
}

// Abl8 rebuilds the Wide&Deep schedule on each platform variant and reports
// how the placement and the co-execution win move — the sensitivity view a
// deployment engineer needs before porting DUET to new hardware.
func Abl8(cfg Config, w io.Writer) error {
	header(w, "abl8", "Platform sensitivity on Wide&Deep")
	g, err := models.WideDeep(models.DefaultWideDeep())
	if err != nil {
		return err
	}
	if err := compiler.InferShapes(g); err != nil {
		return err
	}
	part, err := partition.Build(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %10s %9s %9s %9s %9s  %s\n", "platform", "placement", "DUET", "TVM-CPU", "TVM-GPU", "vs best", "variant")
	for _, v := range platformVariants() {
		plat := v.Build()
		engine, err := runtime.New(part, plat, compiler.DefaultOptions())
		if err != nil {
			return err
		}
		prof := &profile.Profiler{Platform: v.Build(), Options: compiler.DefaultOptions(), Runs: cfg.ProfileRuns}
		records, err := prof.ProfileAll(g, part.Subgraphs())
		if err != nil {
			return err
		}
		s, err := schedule.New(part, records, schedule.EngineMeasure(engine, 1))
		if err != nil {
			return err
		}
		place, err := s.GreedyCorrection()
		if err != nil {
			return err
		}
		duet, err := s.Measure(place)
		if err != nil {
			return err
		}
		n := engine.NumSubgraphs()
		cpu, err := s.Measure(runtime.Uniform(n, device.CPU))
		if err != nil {
			return err
		}
		gpu, err := s.Measure(runtime.Uniform(n, device.GPU))
		if err != nil {
			return err
		}
		best := cpu
		if gpu < best {
			best = gpu
		}
		speed := vclock.Seconds(0)
		if duet > 0 {
			speed = best / duet
		}
		fmt.Fprintf(w, "%-12s %10s %8sms %8sms %8sms %8.2fx  %s\n",
			v.Name, place, ms(duet), ms(cpu), ms(gpu), speed, v.Note)
	}
	fmt.Fprintf(w, "\nfaster links and launches shrink the GPU's RNN penalty and pull work back\nto the GPU; weaker CPUs do the same, while beefier CPUs pull work off it —\nthe schedule adapts without any code change, which is the point of\nprofiling-driven placement\n")
	return nil
}
