package experiments

import (
	"bytes"
	"strings"
	"testing"

	"duet/internal/stats"
)

func sampleReport(duetMean float64) *Report {
	return &Report{
		Schema: 1,
		Fig11: []ReportSeries{{
			Model:     "Wide&Deep",
			DUET:      stats.Summary{Mean: duetMean},
			TVMGPU:    stats.Summary{Mean: duetMean * 2},
			Placement: "GGCGC",
		}},
		Fig13: &Fig13Result{GreedyCorrection: duetMean, Ideal: duetMean},
		Fig14: []SweepPoint{{X: 1, DUET: duetMean}, {X: 2, DUET: 2 * duetMean}},
		Tab3:  []Tab3Row{{Model: "ResNet-50", DUET: duetMean, TVMGPU: duetMean}},
	}
}

func TestCompareReportsNoChange(t *testing.T) {
	var buf bytes.Buffer
	if n := CompareReports(sampleReport(0.005), sampleReport(0.005), 0.05, &buf); n != 0 {
		t.Fatalf("identical reports flagged %d regressions:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "0 regression(s)") {
		t.Fatalf("summary missing:\n%s", buf.String())
	}
}

func TestCompareReportsFlagsSlowdown(t *testing.T) {
	var buf bytes.Buffer
	n := CompareReports(sampleReport(0.005), sampleReport(0.006), 0.05, &buf)
	if n == 0 {
		t.Fatalf("20%% slowdown not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("REGRESSION marker missing:\n%s", buf.String())
	}
}

func TestCompareReportsImprovementNotFlagged(t *testing.T) {
	var buf bytes.Buffer
	if n := CompareReports(sampleReport(0.005), sampleReport(0.004), 0.05, &buf); n != 0 {
		t.Fatalf("improvement flagged as regression")
	}
	if !strings.Contains(buf.String(), "improved") {
		t.Fatalf("improvement marker missing:\n%s", buf.String())
	}
}

func TestCompareReportsOptimalityGuard(t *testing.T) {
	base := sampleReport(0.005)
	next := sampleReport(0.005)
	next.Fig13.GreedyCorrection = next.Fig13.Ideal * 1.2
	var buf bytes.Buffer
	if n := CompareReports(base, next, 0.5, &buf); n == 0 {
		t.Fatalf("lost optimality not flagged (tolerance shouldn't hide it):\n%s", buf.String())
	}
}

// TestCompareReportsEdgeCases table-drives the failure modes the original
// implementation masked: regressions off a zero baseline, series that
// vanish from the fresh report, and the exact-tolerance boundary.
func TestCompareReportsEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		base     func(*Report)
		next     func(*Report)
		tol      float64
		flagged  int
		contains string
	}{
		{
			name:     "zero baseline regression flagged",
			base:     func(r *Report) { r.Fig11[0].DUET.Mean = 0 },
			next:     func(r *Report) {},
			tol:      0.05,
			flagged:  1,
			contains: "REGRESSION",
		},
		{
			name:    "zero baseline still zero is ok",
			base:    func(r *Report) { r.Fig11[0].DUET.Mean = 0 },
			next:    func(r *Report) { r.Fig11[0].DUET.Mean = 0 },
			tol:     0.05,
			flagged: 0,
		},
		{
			name:     "missing fig11 series flagged",
			base:     func(r *Report) {},
			next:     func(r *Report) { r.Fig11 = nil },
			tol:      0.05,
			flagged:  1,
			contains: "MISSING",
		},
		{
			name:     "missing sweep point flagged",
			base:     func(r *Report) {},
			next:     func(r *Report) { r.Fig14 = r.Fig14[:1] },
			tol:      0.05,
			flagged:  1,
			contains: "fig14/x=2/DUET",
		},
		{
			name:     "missing tab3 row flagged",
			base:     func(r *Report) {},
			next:     func(r *Report) { r.Tab3 = nil },
			tol:      0.05,
			flagged:  1,
			contains: "tab3/ResNet-50/DUET",
		},
		{
			name:     "missing fig13 flagged",
			base:     func(r *Report) {},
			next:     func(r *Report) { r.Fig13 = nil },
			tol:      0.05,
			flagged:  1,
			contains: "fig13/greedy+correction",
		},
		{
			name: "extra series reported but not flagged",
			base: func(r *Report) {},
			next: func(r *Report) {
				r.Fig11 = append(r.Fig11, ReportSeries{Model: "Extra", DUET: stats.Summary{Mean: 0.001}})
			},
			tol:      0.05,
			flagged:  0,
			contains: "new series",
		},
		{
			// 2 -> 2.25 is exactly +12.5%; the strict > keeps the boundary
			// itself unflagged (both values are binary-exact, so no float
			// fuzz hides in the comparison).
			name:    "exactly at tolerance is ok",
			base:    func(r *Report) { r.Fig11[0].DUET.Mean = 2 },
			next:    func(r *Report) { r.Fig11[0].DUET.Mean = 2.25 },
			tol:     0.125,
			flagged: 0,
		},
		{
			name:     "just beyond tolerance flagged",
			base:     func(r *Report) { r.Fig11[0].DUET.Mean = 2 },
			next:     func(r *Report) { r.Fig11[0].DUET.Mean = 2.3 },
			tol:      0.125,
			flagged:  1,
			contains: "REGRESSION",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base, next := sampleReport(0.005), sampleReport(0.005)
			c.base(base)
			c.next(next)
			var buf bytes.Buffer
			if n := CompareReports(base, next, c.tol, &buf); n != c.flagged {
				t.Fatalf("flagged %d regressions, want %d:\n%s", n, c.flagged, buf.String())
			}
			if c.contains != "" && !strings.Contains(buf.String(), c.contains) {
				t.Fatalf("output missing %q:\n%s", c.contains, buf.String())
			}
		})
	}
}

func TestCompareReportsPlacementChangeNoted(t *testing.T) {
	base := sampleReport(0.005)
	next := sampleReport(0.005)
	next.Fig11[0].Placement = "CCCCC"
	var buf bytes.Buffer
	CompareReports(base, next, 0.05, &buf)
	if !strings.Contains(buf.String(), "placement changed") {
		t.Fatalf("placement change not noted:\n%s", buf.String())
	}
}
