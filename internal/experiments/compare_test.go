package experiments

import (
	"bytes"
	"strings"
	"testing"

	"duet/internal/stats"
)

func sampleReport(duetMean float64) *Report {
	return &Report{
		Schema: 1,
		Fig11: []ReportSeries{{
			Model:     "Wide&Deep",
			DUET:      stats.Summary{Mean: duetMean},
			TVMGPU:    stats.Summary{Mean: duetMean * 2},
			Placement: "GGCGC",
		}},
		Fig13: &Fig13Result{GreedyCorrection: duetMean, Ideal: duetMean},
		Fig14: []SweepPoint{{X: 1, DUET: duetMean}, {X: 2, DUET: 2 * duetMean}},
		Tab3:  []Tab3Row{{Model: "ResNet-50", DUET: duetMean, TVMGPU: duetMean}},
	}
}

func TestCompareReportsNoChange(t *testing.T) {
	var buf bytes.Buffer
	if n := CompareReports(sampleReport(0.005), sampleReport(0.005), 0.05, &buf); n != 0 {
		t.Fatalf("identical reports flagged %d regressions:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "0 regression(s)") {
		t.Fatalf("summary missing:\n%s", buf.String())
	}
}

func TestCompareReportsFlagsSlowdown(t *testing.T) {
	var buf bytes.Buffer
	n := CompareReports(sampleReport(0.005), sampleReport(0.006), 0.05, &buf)
	if n == 0 {
		t.Fatalf("20%% slowdown not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("REGRESSION marker missing:\n%s", buf.String())
	}
}

func TestCompareReportsImprovementNotFlagged(t *testing.T) {
	var buf bytes.Buffer
	if n := CompareReports(sampleReport(0.005), sampleReport(0.004), 0.05, &buf); n != 0 {
		t.Fatalf("improvement flagged as regression")
	}
	if !strings.Contains(buf.String(), "improved") {
		t.Fatalf("improvement marker missing:\n%s", buf.String())
	}
}

func TestCompareReportsOptimalityGuard(t *testing.T) {
	base := sampleReport(0.005)
	next := sampleReport(0.005)
	next.Fig13.GreedyCorrection = next.Fig13.Ideal * 1.2
	var buf bytes.Buffer
	if n := CompareReports(base, next, 0.5, &buf); n == 0 {
		t.Fatalf("lost optimality not flagged (tolerance shouldn't hide it):\n%s", buf.String())
	}
}

func TestCompareReportsPlacementChangeNoted(t *testing.T) {
	base := sampleReport(0.005)
	next := sampleReport(0.005)
	next.Fig11[0].Placement = "CCCCC"
	var buf bytes.Buffer
	CompareReports(base, next, 0.05, &buf)
	if !strings.Contains(buf.String(), "placement changed") {
		t.Fatalf("placement change not noted:\n%s", buf.String())
	}
}
