package experiments

import (
	"bytes"
	"encoding/json"
	"io"

	"duet/internal/device"
	"strings"
	"testing"

	"duet/internal/stats"
)

// tiny returns a minimal config so experiment tests stay fast.
func tiny() Config { return Config{Seed: 42, Runs: 40, ProfileRuns: 3} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig4", "fig5", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "tab1", "tab2", "tab3", "abl9"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("All() returned %d experiments, want ≥ %d", len(All()), len(want))
	}
	prev := ""
	for _, e := range All() {
		if e.ID <= prev {
			t.Fatalf("All() not sorted: %s after %s", e.ID, prev)
		}
		prev = e.ID
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestFig11ShapeMatchesPaper(t *testing.T) {
	runs, err := Fig11Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("expected 3 models")
	}
	for _, r := range runs {
		gpuSpeed := stats.Speedup(r.TVMGPU.Mean, r.DUET.Mean)
		cpuSpeed := stats.Speedup(r.TVMCPU.Mean, r.DUET.Mean)
		// Paper bands (abstract): 1.5-2.3x vs TVM-GPU, 1.3-6.4x vs TVM-CPU
		// (up to 15.9x per §VI-B); allow generous slack around them.
		if gpuSpeed < 1.3 || gpuSpeed > 3.5 {
			t.Errorf("%s: GPU speedup %.2fx outside [1.3, 3.5]", r.Model, gpuSpeed)
		}
		if cpuSpeed < 1.2 || cpuSpeed > 20 {
			t.Errorf("%s: CPU speedup %.2fx outside [1.2, 20]", r.Model, cpuSpeed)
		}
		// DUET must never lose to the frameworks.
		if r.DUET.Mean >= r.FrameworkGPU.Mean || r.DUET.Mean >= r.FrameworkCPU.Mean {
			t.Errorf("%s: DUET should beat both frameworks", r.Model)
		}
	}
}

func TestFaultSweepFailoverBeatsAbort(t *testing.T) {
	rows, sla, err := FaultSweepData(tiny(), []float64{0, 0.01, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if sla <= 0 {
		t.Fatalf("nonsense SLA %v", sla)
	}
	for _, r := range rows {
		if r.Rate == 0 {
			if r.FailoverSLA < 0.99 || r.AbortSLA < 0.99 {
				t.Errorf("fault-free attainment should be ~100%%: failover %.2f abort %.2f", r.FailoverSLA, r.AbortSLA)
			}
			continue
		}
		if r.FailoverSLA < r.AbortSLA {
			t.Errorf("rate %.3f: failover SLA %.2f below abort SLA %.2f", r.Rate, r.FailoverSLA, r.AbortSLA)
		}
	}
	// At the harshest rate the gap must be strict — failover visibly wins.
	last := rows[len(rows)-1]
	if last.FailoverSLA <= last.AbortSLA {
		t.Errorf("rate %.3f: failover (%.2f) should strictly beat abort (%.2f)", last.Rate, last.FailoverSLA, last.AbortSLA)
	}
}

func TestFig12TailsOrdered(t *testing.T) {
	runs, err := Fig11Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		for _, s := range []stats.Summary{r.DUET, r.TVMGPU} {
			if !(s.P50 <= s.P99 && s.P99 <= s.P999) {
				t.Errorf("%s: percentiles not ordered: %+v", r.Model, s)
			}
		}
		// DUET keeps winning at the tail.
		if r.DUET.P99 >= r.TVMGPU.P99 {
			t.Errorf("%s: DUET P99 (%v) should beat TVM-GPU P99 (%v)", r.Model, r.DUET.P99, r.TVMGPU.P99)
		}
	}
}

func TestFig13OrderingMatchesPaper(t *testing.T) {
	r, err := Fig13Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.GreedyCorrection > r.Ideal*1.02 {
		t.Errorf("greedy+correction (%v) should match ideal (%v)", r.GreedyCorrection, r.Ideal)
	}
	if r.GreedyCorrection > r.Random {
		t.Errorf("greedy+correction should beat random")
	}
	if r.RandomCorrection > r.Random {
		t.Errorf("random+correction should beat random")
	}
	if r.Ideal > r.RoundRobin || r.Ideal > r.Random {
		t.Errorf("ideal must lower-bound the baselines")
	}
}

func TestFig14GPUDegradesFastest(t *testing.T) {
	points, err := Fig14Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expected 4 sweep points")
	}
	// GPU latency growth from 1 to 8 layers must exceed CPU growth in
	// relative terms (RNN hurts GPU more, Fig. 14).
	gpuGrowth := points[3].TVMGPU / points[0].TVMGPU
	cpuGrowth := points[3].TVMCPU / points[0].TVMCPU
	if gpuGrowth <= cpuGrowth {
		t.Errorf("GPU growth %.2fx should exceed CPU growth %.2fx", gpuGrowth, cpuGrowth)
	}
	for _, p := range points {
		if p.DUET >= p.TVMGPU || p.DUET >= p.TVMCPU {
			t.Errorf("DUET should win at rnn_layers=%d", p.X)
		}
	}
}

func TestFig15CPUDegradesFastest(t *testing.T) {
	points, err := Fig15Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	cpuGrowth := points[len(points)-1].TVMCPU / points[0].TVMCPU
	gpuGrowth := points[len(points)-1].TVMGPU / points[0].TVMGPU
	if cpuGrowth <= gpuGrowth {
		t.Errorf("CNN depth should hurt CPU most: cpu %.2fx vs gpu %.2fx", cpuGrowth, gpuGrowth)
	}
	// DUET stays flat while the CNN hides under the RNN (18 → 50).
	if points[2].DUET > points[0].DUET*1.2 {
		t.Errorf("DUET should stay nearly flat to depth 50: %v vs %v", points[2].DUET, points[0].DUET)
	}
}

func TestFig16FlatAcrossFFNDepth(t *testing.T) {
	points, err := Fig16Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points[1:] {
		if p.DUET > points[0].DUET*1.15 {
			t.Errorf("FFN depth should barely change DUET: %v vs %v", p.DUET, points[0].DUET)
		}
	}
}

func TestFig17SpeedupDiminishesWithBatch(t *testing.T) {
	points, err := Fig17Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	first := stats.Speedup(points[0].TVMGPU, points[0].DUET)
	last := stats.Speedup(points[len(points)-1].TVMGPU, points[len(points)-1].DUET)
	if first < 1.3 {
		t.Errorf("batch-2 speedup %.2fx too small", first)
	}
	if last > first {
		t.Errorf("speedup should diminish with batch: %.2fx -> %.2fx", first, last)
	}
	if last < 0.95 {
		t.Errorf("DUET should never lose at large batch: %.2fx", last)
	}
}

func TestTab3FallbackMatchesGPU(t *testing.T) {
	rows, err := Tab3Data(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		rel := r.DUET / r.TVMGPU
		if rel > 1.02 || rel < 0.9 {
			t.Errorf("%s: DUET/GPU ratio %.3f should be ~1 (fallback)", r.Model, rel)
		}
		if r.TVMCPU < r.TVMGPU {
			t.Errorf("%s: CPU should be slower than GPU on CNNs", r.Model)
		}
	}
}

func TestAllExperimentsRenderOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full render pass is slow")
	}
	cfg := tiny()
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(cfg, &buf); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		out := buf.String()
		if !strings.Contains(out, e.ID) {
			t.Errorf("%s output missing header: %q", e.ID, out[:min(80, len(out))])
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short", e.ID)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ = io.Discard

func TestBuildReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report build is slow")
	}
	r, err := BuildReport(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Fig11) != 3 || len(r.Fig14) != 4 || len(r.Fig17) != 5 || len(r.Tab3) != 5 {
		t.Fatalf("report incomplete: %+v", r)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON invalid: %v", err)
	}
	if back.Fig11[0].DUET.Mean != r.Fig11[0].DUET.Mean {
		t.Fatalf("JSON round trip lost data")
	}
}

func TestAbl8PlatformSensitivity(t *testing.T) {
	var buf bytes.Buffer
	if err := Abl8(tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"baseline", "nvlink", "slow-launch", "fast-launch", "weak-cpu", "beefy-cpu"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing variant %q:\n%s", frag, out)
		}
	}
}

func TestPlatformVariantsIndependent(t *testing.T) {
	// Variant builders must not mutate shared state: building nvlink then
	// baseline must leave baseline calibrated.
	vs := platformVariants()
	var nv, base *device.Platform
	for _, v := range vs {
		switch v.Name {
		case "nvlink":
			nv = v.Build()
		case "baseline":
			base = v.Build()
		}
	}
	if nv.Link.Bandwidth <= base.Link.Bandwidth {
		t.Fatalf("nvlink variant not applied")
	}
	fresh := device.NewPlatform(0)
	if base.Link.Bandwidth != fresh.Link.Bandwidth || base.GPU.LaunchOverhead != fresh.GPU.LaunchOverhead {
		t.Fatalf("baseline variant drifted from calibration")
	}
}
