package experiments

import (
	"fmt"
	"io"
	"math"
)

// CompareReports diffs two reports and writes a regression summary: for
// every shared series it reports the relative change of the DUET mean and
// flags changes beyond tolerance (e.g. 0.05 = ±5%) — the check a CI job
// runs against a stored baseline report after calibration or scheduler
// changes. Series present in the baseline but absent from the fresh report
// are flagged too: a vanished series would otherwise mask the regression
// that removed it. It returns the number of flagged regressions (slowdowns
// beyond tolerance and missing series; improvements are reported but not
// counted).
func CompareReports(base, next *Report, tolerance float64, w io.Writer) int {
	flagged := 0
	rel := func(b, n float64) float64 {
		if b == 0 {
			// Any nonzero value off a zero baseline is an infinite relative
			// change — returning 0 here would report a regression from a
			// zero baseline as "ok".
			switch {
			case n > 0:
				return math.Inf(1)
			case n < 0:
				return math.Inf(-1)
			default:
				return 0
			}
		}
		return (n - b) / b
	}
	mark := func(change float64) string {
		switch {
		case change > tolerance:
			flagged++
			return "REGRESSION"
		case change < -tolerance:
			return "improved"
		default:
			return "ok"
		}
	}

	// missing flags a series the baseline has but the fresh report lost:
	// treated as a regression, since silently skipping it would hide
	// whatever change dropped the series.
	missing := func(name string, baseMs float64) {
		flagged++
		fmt.Fprintf(w, "%-28s %12.3f %12s %9s MISSING from fresh report\n", name, baseMs, "-", "-")
	}

	fmt.Fprintf(w, "%-28s %12s %12s %9s %s\n", "series", "base (ms)", "next (ms)", "change", "verdict")
	byModel := map[string]ReportSeries{}
	for _, s := range base.Fig11 {
		byModel[s.Model] = s
	}
	seen := map[string]bool{}
	for _, n := range next.Fig11 {
		b, ok := byModel[n.Model]
		if !ok {
			fmt.Fprintf(w, "%-28s %12s %12.3f %9s new series\n", "fig11/"+n.Model+"/DUET", "-", n.DUET.Mean*1e3, "-")
			continue
		}
		seen[n.Model] = true
		change := rel(b.DUET.Mean, n.DUET.Mean)
		fmt.Fprintf(w, "%-28s %12.3f %12.3f %+8.1f%% %s\n",
			"fig11/"+n.Model+"/DUET", b.DUET.Mean*1e3, n.DUET.Mean*1e3, change*100, mark(change))
		if b.Placement != n.Placement {
			fmt.Fprintf(w, "%-28s placement changed: %s -> %s\n", "", b.Placement, n.Placement)
		}
	}
	for _, s := range base.Fig11 {
		if !seen[s.Model] {
			missing("fig11/"+s.Model+"/DUET", s.DUET.Mean*1e3)
		}
	}

	compareSweep := func(name string, bs, ns []SweepPoint) {
		nx := map[int]bool{}
		for _, p := range ns {
			nx[p.X] = true
		}
		bx := map[int]SweepPoint{}
		for _, p := range bs {
			bx[p.X] = p
			if !nx[p.X] {
				missing(fmt.Sprintf("%s/x=%d/DUET", name, p.X), p.DUET*1e3)
			}
		}
		for _, p := range ns {
			bp, ok := bx[p.X]
			if !ok {
				continue
			}
			change := rel(bp.DUET, p.DUET)
			fmt.Fprintf(w, "%-28s %12.3f %12.3f %+8.1f%% %s\n",
				fmt.Sprintf("%s/x=%d/DUET", name, p.X), bp.DUET*1e3, p.DUET*1e3, change*100, mark(change))
		}
	}
	compareSweep("fig14", base.Fig14, next.Fig14)
	compareSweep("fig15", base.Fig15, next.Fig15)
	compareSweep("fig16", base.Fig16, next.Fig16)
	compareSweep("fig17", base.Fig17, next.Fig17)

	bt := map[string]Tab3Row{}
	for _, r := range base.Tab3 {
		bt[r.Model] = r
	}
	seenTab := map[string]bool{}
	for _, r := range next.Tab3 {
		b, ok := bt[r.Model]
		if !ok {
			continue
		}
		seenTab[r.Model] = true
		change := rel(b.DUET, r.DUET)
		fmt.Fprintf(w, "%-28s %12.3f %12.3f %+8.1f%% %s\n",
			"tab3/"+r.Model+"/DUET", b.DUET*1e3, r.DUET*1e3, change*100, mark(change))
	}
	for _, r := range base.Tab3 {
		if !seenTab[r.Model] {
			missing("tab3/"+r.Model+"/DUET", r.DUET*1e3)
		}
	}

	if base.Fig13 != nil && next.Fig13 == nil {
		missing("fig13/greedy+correction", base.Fig13.GreedyCorrection*1e3)
	}
	if base.Fig13 != nil && next.Fig13 != nil {
		change := rel(base.Fig13.GreedyCorrection, next.Fig13.GreedyCorrection)
		fmt.Fprintf(w, "%-28s %12.3f %12.3f %+8.1f%% %s\n",
			"fig13/greedy+correction", base.Fig13.GreedyCorrection*1e3, next.Fig13.GreedyCorrection*1e3, change*100, mark(change))
		// Optimality must be preserved regardless of absolute drift; this
		// bound is fixed (not the caller's tolerance) because losing the
		// match-the-ideal property is a correctness regression, not noise.
		if next.Fig13.GreedyCorrection > next.Fig13.Ideal*1.02 {
			flagged++
			fmt.Fprintf(w, "%-28s greedy+correction no longer matches ideal (%0.3f vs %0.3f ms)\n",
				"fig13/optimality", next.Fig13.GreedyCorrection*1e3, next.Fig13.Ideal*1e3)
		}
	}
	fmt.Fprintf(w, "\n%d regression(s) beyond ±%.0f%%\n", flagged, tolerance*100)
	return flagged
}
