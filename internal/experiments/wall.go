package experiments

import "time"

// wallSeconds times fn on the host clock. It lives in its own file, away
// from any vclock import, so the vclockpurity analyzer can see the wall
// clock never mixes into simulated time: callers only feed the result into
// trend-only report fields.
func wallSeconds(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}
