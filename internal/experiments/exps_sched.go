package experiments

import (
	"encoding/json"
	"io"

	"duet/internal/compiler"
	"duet/internal/core"
	"duet/internal/costmodel"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/partition"
	"duet/internal/profile"
	"duet/internal/vclock"
)

// SchedModelReport is one model's row in the cost-model/search benchmark:
// how the three profile sources compare on schedule quality and
// micro-benchmark spend, and how the wide search compares against classic
// greedy correction.
type SchedModelReport struct {
	Model     string `json:"model"`
	Subgraphs int    `json:"subgraphs"`

	// Measured / Predicted / Hybrid are the noiseless end-to-end makespans
	// of the schedules each profile source produced.
	MeasuredMakespanS  float64 `json:"measured_makespan_s"`
	PredictedMakespanS float64 `json:"predicted_makespan_s"`
	HybridMakespanS    float64 `json:"hybrid_makespan_s"`
	// PredictedRatio / HybridRatio are each mode's makespan over the
	// measured mode's (1.0 = identical schedule quality).
	PredictedRatio float64 `json:"predicted_ratio"`
	HybridRatio    float64 `json:"hybrid_ratio"`

	// Micro-benchmark executions per source; predicted mode is zero by
	// construction and is asserted, not reported.
	MicrobenchMeasured int `json:"microbench_measured"`
	MicrobenchHybrid   int `json:"microbench_hybrid"`
	// Reduction = measured/hybrid micro-benchmark executions (the >= 4x
	// acceptance headline).
	Reduction float64 `json:"reduction"`

	// Search vs greedy correction, both on measured records.
	GreedyMakespanS   float64 `json:"greedy_makespan_s"`
	SearchMakespanS   float64 `json:"search_makespan_s"`
	SearchBetterOrEq  bool    `json:"search_better_or_equal"`
	SearchCandidates  int     `json:"search_candidates"`
	SearchMeasureCall int     `json:"search_measure_calls"`

	// Wall-clock seconds to build the engine per mode (host-dependent,
	// trend-only).
	WallMeasuredS  float64 `json:"wall_measured_s"`
	WallPredictedS float64 `json:"wall_predicted_s"`
}

// SchedReport is the committed BENCH_sched.json document: cost-model
// accuracy over the zoo plus per-model schedule-quality and
// benchmark-spend comparisons.
type SchedReport struct {
	Models []SchedModelReport `json:"models"`
	// Train-set accuracy of the committed-profile regression (MAPE gates;
	// P90 tails trend).
	CPUMAPE      float64 `json:"cpu_mape"`
	GPUMAPE      float64 `json:"gpu_mape"`
	CPUP90APE    float64 `json:"cpu_p90_ape"`
	GPUP90APE    float64 `json:"gpu_p90_ape"`
	TrainSamples int     `json:"train_samples"`
}

// schedZoo is the model zoo the cost model trains and evaluates on — the
// three heterogeneous evaluation models plus the two deepest CNN phase
// structures, so the regression sees RNN, dense, conv, and inception-style
// kernels.
func schedZoo() []modelSpec {
	return append(evalModels(),
		modelSpec{"GoogLeNet", func() (*graph.Graph, error) { return models.GoogLeNet(models.DefaultGoogLeNet()) }, "TVM"},
		modelSpec{"SqueezeNet", func() (*graph.Graph, error) { return models.SqueezeNet(models.DefaultSqueezeNet()) }, "TVM"},
	)
}

// TrainZooModel profiles every zoo model noiselessly and fits the latency
// regressor — the exact pipeline cmd/duet-profile -train runs to produce
// the committed COSTMODEL.json artifact.
func TrainZooModel(cfg Config) (*costmodel.Model, []costmodel.Sample, error) {
	opts := compiler.DefaultOptions()
	var samples []costmodel.Sample
	for _, spec := range schedZoo() {
		g, err := spec.Build()
		if err != nil {
			return nil, nil, err
		}
		if err := compiler.InferShapes(g); err != nil {
			return nil, nil, err
		}
		part, err := partition.Build(g)
		if err != nil {
			return nil, nil, err
		}
		prof := profile.New(device.NewPlatform(0))
		prof.Options = opts
		prof.Runs = 3
		recs, err := prof.ProfileAll(g, part.Subgraphs())
		if err != nil {
			return nil, nil, err
		}
		s, err := profile.CostSamples(part, opts, recs)
		if err != nil {
			return nil, nil, err
		}
		samples = append(samples, s...)
	}
	m, err := costmodel.Train(samples, 0)
	if err != nil {
		return nil, nil, err
	}
	return m, samples, nil
}

// BuildSchedReport runs the cost-model/search benchmark: train the
// regressor from zoo profiles, then for every zoo model build engines
// under all three profile sources plus the wide-search correction and
// compare schedule quality, micro-benchmark spend, and search efficiency.
func BuildSchedReport(cfg Config) (*SchedReport, error) {
	m, samples, err := TrainZooModel(cfg)
	if err != nil {
		return nil, err
	}
	acc := m.Eval(samples)
	rep := &SchedReport{
		CPUMAPE:      acc.MAPE[device.CPU],
		GPUMAPE:      acc.MAPE[device.GPU],
		CPUP90APE:    acc.P90APE[device.CPU],
		GPUP90APE:    acc.P90APE[device.GPU],
		TrainSamples: len(samples),
	}

	for _, spec := range schedZoo() {
		base := core.DefaultConfig(cfg.Seed)
		base.ProfileRuns = cfg.ProfileRuns
		// Compare the scheduled placements themselves: the uniform-device
		// fallback would mask every schedule-quality difference.
		base.DisableFallback = true

		build := func(mutate func(*core.Config)) (*core.Engine, float64, error) {
			g, err := spec.Build()
			if err != nil {
				return nil, 0, err
			}
			c := base
			if mutate != nil {
				mutate(&c)
			}
			var e *core.Engine
			wall, err := wallSeconds(func() error {
				var berr error
				e, berr = core.Build(g, c)
				return berr
			})
			if err != nil {
				return nil, 0, err
			}
			return e, wall, nil
		}

		em, wallM, err := build(nil)
		if err != nil {
			return nil, err
		}
		ep, wallP, err := build(func(c *core.Config) {
			c.Mode = core.ProfilePredicted
			c.CostModel = m
		})
		if err != nil {
			return nil, err
		}
		eh, _, err := build(func(c *core.Config) {
			c.Mode = core.ProfileHybrid
			c.CostModel = m
		})
		if err != nil {
			return nil, err
		}
		es, _, err := build(func(c *core.Config) {
			c.SearchCorrection = true
		})
		if err != nil {
			return nil, err
		}

		makespan := func(e *core.Engine) (vclock.Seconds, error) {
			return e.Scheduler.Measure(e.Placement)
		}
		latM, err := makespan(em)
		if err != nil {
			return nil, err
		}
		latP, err := makespan(ep)
		if err != nil {
			return nil, err
		}
		latH, err := makespan(eh)
		if err != nil {
			return nil, err
		}
		latS, err := makespan(es)
		if err != nil {
			return nil, err
		}

		row := SchedModelReport{
			Model:              spec.Name,
			Subgraphs:          em.ProfileStats.Subgraphs,
			MeasuredMakespanS:  float64(latM),
			PredictedMakespanS: float64(latP),
			HybridMakespanS:    float64(latH),
			PredictedRatio:     float64(latP) / float64(latM),
			HybridRatio:        float64(latH) / float64(latM),
			MicrobenchMeasured: em.ProfileStats.Microbenchmarks,
			MicrobenchHybrid:   eh.ProfileStats.Microbenchmarks,
			GreedyMakespanS:    float64(latM),
			SearchMakespanS:    float64(latS),
			SearchBetterOrEq:   float64(latS) <= float64(latM)*(1+1e-9),
			WallMeasuredS:      wallM,
			WallPredictedS:     wallP,
		}
		if eh.ProfileStats.Microbenchmarks > 0 {
			row.Reduction = float64(em.ProfileStats.Microbenchmarks) / float64(eh.ProfileStats.Microbenchmarks)
		}
		if es.SearchTrail != nil {
			row.SearchCandidates = es.SearchTrail.Candidates
			row.SearchMeasureCall = es.SearchTrail.MeasureCalls
		}
		rep.Models = append(rep.Models, row)
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *SchedReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
