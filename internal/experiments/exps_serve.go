package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/obs"
	"duet/internal/serve"
	"duet/internal/vclock"
	"duet/internal/workload"
)

// ServeLoad is the load-generator and server shape for the serving
// benchmark. Every field is surfaced as a duet-bench flag so offered load,
// SLA, and batching policy can be swept without recompiling.
type ServeLoad struct {
	// Requests is the request-stream length per mode and load pattern.
	Requests int `json:"requests"`
	// QPS is the Poisson offered load for the open-loop runs. 0 picks
	// 1.2× the measured serial Infer rate — past the serial engine's
	// capacity, inside the batched/pipelined server's.
	QPS float64 `json:"qps"`
	// Deadline is the per-request relative SLA; 0 disables deadlines (and
	// with them admission control and shedding).
	Deadline vclock.Seconds `json:"deadline_s"`
	// Replicas is the engine replica count.
	Replicas int `json:"replicas"`
	// MaxBatch caps the micro-batcher in rows for the batched modes.
	MaxBatch int `json:"max_batch"`
	// Window is the micro-batcher's maximum accumulation latency.
	Window vclock.Seconds `json:"window_s"`
}

// DefaultServeLoad is the committed-baseline shape: one replica (so the
// batching and pipelining wins are not confounded with replica scaling),
// batches up to 8 rows under a 2 ms window, no deadline.
func DefaultServeLoad() ServeLoad {
	return ServeLoad{Requests: 48, Replicas: 1, MaxBatch: 8, Window: 2e-3}
}

// ServeModeRow is one serving configuration measured under both load
// patterns: an all-at-once burst (saturated capacity) and a Poisson open
// loop at the offered QPS (tail latency at load).
type ServeModeRow struct {
	Mode     string        `json:"mode"`
	MaxBatch int           `json:"max_batch"`
	Capacity *serve.Report `json:"capacity"`
	Offered  *serve.Report `json:"offered"`
}

// ServeReport is the machine-readable serving benchmark: a serial
// back-to-back Infer loop as the floor, then the concurrent server in
// unbatched, batched, and batched+pipelined modes. Committed as
// BENCH_serve.json so the pipelining and batching speedups are diffable
// across revisions.
type ServeReport struct {
	Model string    `json:"model"`
	Load  ServeLoad `json:"load"`
	// SerialRPS is the back-to-back Infer loop's throughput (1 / mean
	// single-request latency) — the no-server baseline.
	SerialRPS float64        `json:"serial_rps"`
	Modes     []ServeModeRow `json:"modes"`
	// PipelinedVsSerial is the pipelined mode's burst capacity over the
	// serial Infer rate (the headline ≥1.3× claim).
	PipelinedVsSerial float64 `json:"pipelined_vs_serial"`
	// BatchedVsUnbatched compares burst capacities of the two
	// non-pipelined server modes, isolating the micro-batching win.
	BatchedVsUnbatched float64 `json:"batched_vs_unbatched"`
	// Metrics snapshots the serve_* instrument families from the pipelined
	// capacity run, so the metric surface is part of the baseline.
	Metrics obs.Snapshot `json:"metrics"`
}

// serveModel is the reduced Wide&Deep the serving benchmark runs: requests
// execute real tensor math, so the full-size model would dominate wall
// clock without changing the virtual-time comparison.
func serveModel() models.WideDeepConfig {
	wd := models.DefaultWideDeep()
	wd.ImageSize = 64
	wd.SeqLen = 16
	return wd
}

// BuildServeReport measures the serving layer on the reduced Wide&Deep:
// serial floor, then {unbatched, batched, pipelined} × {burst, Poisson}.
func BuildServeReport(cfg Config, load ServeLoad) (*ServeReport, error) {
	wd := serveModel()
	g, err := models.WideDeep(wd)
	if err != nil {
		return nil, err
	}
	e, err := buildEngine(g, cfg)
	if err != nil {
		return nil, err
	}

	if load.Requests <= 0 {
		load.Requests = DefaultServeLoad().Requests
	}
	if load.Replicas <= 0 {
		load.Replicas = 1
	}
	if load.MaxBatch <= 0 {
		load.MaxBatch = DefaultServeLoad().MaxBatch
	}
	if load.Window <= 0 {
		load.Window = DefaultServeLoad().Window
	}

	n := cfg.Runs
	if n > 200 {
		n = 200
	}
	if n < 1 {
		n = 1
	}
	lat, err := e.Measure(n)
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, l := range lat {
		sum += l
	}
	serialRPS := float64(n) / sum
	if load.QPS <= 0 {
		load.QPS = 1.2 * serialRPS
	}

	inputs := workload.WideDeepStream(wd, cfg.Seed+1000)
	batchGraph := func(b int) (*graph.Graph, error) {
		c := wd
		c.Batch = b
		return models.WideDeep(c)
	}

	runOnce := func(maxBatch int, pipelined bool, spec serve.LoadSpec, reg *obs.Registry) (*serve.Report, error) {
		scfg := serve.Config{
			Engine:    e,
			Replicas:  load.Replicas,
			MaxBatch:  maxBatch,
			Window:    load.Window,
			Pipelined: pipelined,
			Admission: load.Deadline > 0,
			Seed:      cfg.Seed,
			Registry:  reg,
		}
		if maxBatch > 1 {
			scfg.BatchGraph = batchGraph
		}
		srv, err := serve.New(scfg)
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		rep, _, err := srv.Run(serve.OpenLoop(spec))
		return rep, err
	}

	burst := serve.LoadSpec{Requests: load.Requests, Burst: true, Deadline: load.Deadline, Inputs: inputs}
	poisson := serve.LoadSpec{Requests: load.Requests, QPS: load.QPS, Deadline: load.Deadline, Seed: cfg.Seed + 3, Inputs: inputs}

	reg := obs.NewRegistry()
	modes := []struct {
		name      string
		maxBatch  int
		pipelined bool
		reg       *obs.Registry
	}{
		{"unbatched", 1, false, nil},
		{"batched", load.MaxBatch, false, nil},
		{"pipelined", load.MaxBatch, true, reg},
	}

	rep := &ServeReport{Model: g.Name, Load: load, SerialRPS: serialRPS}
	caps := map[string]float64{}
	for _, m := range modes {
		capRep, err := runOnce(m.maxBatch, m.pipelined, burst, m.reg)
		if err != nil {
			return nil, fmt.Errorf("%s capacity: %w", m.name, err)
		}
		offRep, err := runOnce(m.maxBatch, m.pipelined, poisson, nil)
		if err != nil {
			return nil, fmt.Errorf("%s offered: %w", m.name, err)
		}
		caps[m.name] = capRep.Throughput
		rep.Modes = append(rep.Modes, ServeModeRow{Mode: m.name, MaxBatch: m.maxBatch, Capacity: capRep, Offered: offRep})
	}
	if serialRPS > 0 {
		rep.PipelinedVsSerial = caps["pipelined"] / serialRPS
	}
	if caps["unbatched"] > 0 {
		rep.BatchedVsUnbatched = caps["batched"] / caps["unbatched"]
	}
	rep.Metrics = reg.Snapshot()
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ServeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// String renders the headline comparison.
func (r *ServeReport) String() string {
	s := fmt.Sprintf("serving %s: serial %.1f req/s\n", r.Model, r.SerialRPS)
	for _, m := range r.Modes {
		s += fmt.Sprintf("  %-10s capacity %7.1f req/s (p99 %.3f ms)   offered@%.0fqps p99 %.3f ms mean_rows %.2f\n",
			m.Mode, m.Capacity.Throughput, float64(m.Capacity.P99Latency)*1e3,
			r.Load.QPS, float64(m.Offered.P99Latency)*1e3, m.Offered.MeanBatchRows)
	}
	s += fmt.Sprintf("  pipelined/serial %.2fx   batched/unbatched %.2fx", r.PipelinedVsSerial, r.BatchedVsUnbatched)
	return s
}
