package experiments

import (
	"encoding/json"
	"errors"
	"io"

	"duet/internal/device"
	"duet/internal/faults"
	"duet/internal/models"
	"duet/internal/obs"
	"duet/internal/runtime"
	"duet/internal/schedule"
	"duet/internal/workload"
)

// ObsReport is the machine-readable observability benchmark: the metrics
// snapshot of an instrumented engine driven through plain, parallel, and
// fault-injected runs, plus the scheduler's placement audit for the same
// model. Committed as BENCH_obs.json so metric names and audit shape are
// diffable across revisions.
type ObsReport struct {
	Model     string          `json:"model"`
	Runs      int             `json:"runs"`
	FaultRate float64         `json:"fault_rate"`
	Metrics   obs.Snapshot    `json:"metrics"`
	Audit     *schedule.Audit `json:"audit"`
}

// BuildObsReport instruments a Wide&Deep engine, exercises every metered
// path (Run, RunWithPolicy under injected faults, the breaker, the
// synchronization queues via RunParallel), and returns the collected
// registry snapshot with the placement audit.
func BuildObsReport(cfg Config) (*ObsReport, error) {
	wd := models.DefaultWideDeep()
	g, err := models.WideDeep(wd)
	if err != nil {
		return nil, err
	}
	e, err := buildEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	e.Instrument(reg)

	if _, err := e.Measure(cfg.Runs); err != nil {
		return nil, err
	}

	const rate = 0.01
	pol := runtime.DefaultPolicy()
	// One extra retry over the production default: at a 1% per-kernel
	// fault rate an unlucky seed can draw enough consecutive failures to
	// exhaust both devices on one subgraph, and the benchmark wants the
	// tolerated-fault path, not the giving-up path, to dominate.
	pol.MaxRetries = 3
	pol.Injector = faults.New(cfg.Seed+1,
		faults.KernelFailures(device.CPU, rate),
		faults.KernelFailures(device.GPU, rate),
		faults.TransferFailures(rate))
	// An exhausted run is a legitimate draw under injected faults, and the
	// engine has already counted it (duet_exhausted_total / run errors).
	// The injector stream advanced, so re-running samples a fresh fault
	// schedule — the same way trace replay handles exhaustion. The spare
	// budget keeps a genuinely broken engine from looping forever.
	for done, spare := 0, 2*cfg.Runs; done < cfg.Runs; {
		_, err := e.MeasureWithPolicy(pol, 1)
		switch {
		case err == nil:
			done++
		case errors.Is(err, runtime.ErrExhausted) && spare > 0:
			spare--
		default:
			return nil, err
		}
	}

	inputs := workload.WideDeepInputs(wd, cfg.Seed)
	if _, err := e.InferParallel(inputs); err != nil {
		return nil, err
	}

	audit, err := e.ScheduleAudit()
	if err != nil {
		return nil, err
	}
	return &ObsReport{
		Model:     g.Name,
		Runs:      cfg.Runs,
		FaultRate: rate,
		Metrics:   reg.Snapshot(),
		Audit:     audit,
	}, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ObsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
