package experiments

import (
	"fmt"
	"io"

	"duet/internal/compiler"
	"duet/internal/device"
	"duet/internal/models"
	"duet/internal/partition"
	"duet/internal/profile"
	"duet/internal/runtime"
	"duet/internal/schedule"
	"duet/internal/vclock"
)

func init() {
	register("abl1", "Ablation: compiler-aware vs compiler-blind profiling", Abl1)
	register("abl2", "Ablation: greedy-only vs greedy+correction scheduling", Abl2)
	register("abl3", "Ablation: coarse vs nested (multi-level) partitioning", Abl3)
	register("abl4", "Ablation: intra-device concurrent subgraph execution", Abl4)
	register("abl5", "Ablation: DP-based analytic placement vs greedy-correction", Abl5)
	register("abl6", "Ablation: low-level schedule tuning (winograd/tiling)", Abl6)
	register("abl7", "Ablation: pipelined multi-request throughput", Abl7)
}

// Abl7 measures back-to-back request throughput: DUET's heterogeneous
// placement overlaps request r's CPU phase with request r+1's GPU phase, so
// its throughput gain exceeds its latency gain — the serving-side payoff
// the paper's SLA motivation (§II-A) points at.
func Abl7(cfg Config, w io.Writer) error {
	header(w, "abl7", "Pipelined throughput over 200 back-to-back requests")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %18s\n", "model", "DUET (req/s)", "GPU (req/s)", "CPU (req/s)", "DUET gain vs GPU")
	for _, spec := range evalModels() {
		g, err := spec.Build()
		if err != nil {
			return err
		}
		e, err := buildEngine(g, cfg)
		if err != nil {
			return err
		}
		n := e.Search.NumSubgraphs()
		duet, err := e.Search.MeasurePipelined(e.Placement, 200)
		if err != nil {
			return err
		}
		gpu, err := e.Search.MeasurePipelined(runtime.Uniform(n, device.GPU), 200)
		if err != nil {
			return err
		}
		cpu, err := e.Search.MeasurePipelined(runtime.Uniform(n, device.CPU), 200)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %14.0f %14.0f %14.0f %17.2fx\n",
			spec.Name, duet.Throughput, gpu.Throughput, cpu.Throughput, duet.Throughput/gpu.Throughput)
	}
	fmt.Fprintf(w, "\npipelining turns co-execution's latency win into a throughput win of the\nsame or larger factor (device phases of consecutive requests overlap)\n")
	return nil
}

// Abl6 measures the low-level optimization layer (Fig. 1's fourth stage):
// per-device kernel-variant selection — Winograd for eligible convolutions
// and GEMM tiling — against untuned lowering, per model and device.
func Abl6(cfg Config, w io.Writer) error {
	header(w, "abl6", "Low-level schedule tuning")
	fmt.Fprintf(w, "%-10s %-8s %14s %14s %9s\n", "model", "device", "untuned (ms)", "tuned (ms)", "gain")
	for _, spec := range evalModels() {
		g, err := spec.Build()
		if err != nil {
			return err
		}
		if err := compiler.InferShapes(g); err != nil {
			return err
		}
		part, err := partition.Build(g)
		if err != nil {
			return err
		}
		tunedOpts := compiler.DefaultOptions()
		rawOpts := tunedOpts
		rawOpts.Tune = false
		tuned, err := runtime.New(part, device.NewPlatform(0), tunedOpts)
		if err != nil {
			return err
		}
		raw, err := runtime.New(part, device.NewPlatform(0), rawOpts)
		if err != nil {
			return err
		}
		for _, kind := range []device.Kind{device.CPU, device.GPU} {
			place := runtime.Uniform(tuned.NumSubgraphs(), kind)
			tl, err := tuned.MeasureLatency(place, 1)
			if err != nil {
				return err
			}
			rl, err := raw.MeasureLatency(place, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %-8s %14s %14s %8.1f%%\n", spec.Name, kind, ms(rl[0]), ms(tl[0]), (rl[0]-tl[0])/rl[0]*100)
		}
	}
	fmt.Fprintf(w, "\nconvolution-heavy models gain most (Winograd); recurrent kernels are\nexcluded from variant selection, so RNN-bound latencies barely move\n")
	return nil
}

// Abl1 quantifies the paper's compiler-aware profiling claim (§IV-B): the
// greedy placement computed from *unfused* profile records is evaluated on
// the real (fused) runtime and compared against the placement computed from
// fused records. Correction is disabled on both sides so the profile
// quality is what differs.
func Abl1(cfg Config, w io.Writer) error {
	header(w, "abl1", "Compiler-aware profiling (greedy placement quality)")
	fmt.Fprintf(w, "%-10s %-16s %9s %12s %12s %12s\n", "model", "profiling", "kernels", "profCPU(ms)", "profGPU(ms)", "latency(ms)")
	for _, spec := range evalModels() {
		g, err := spec.Build()
		if err != nil {
			return err
		}
		if err := compiler.InferShapes(g); err != nil {
			return err
		}
		part, err := partition.Build(g)
		if err != nil {
			return err
		}
		engine, err := runtime.New(part, device.NewPlatform(0), compiler.DefaultOptions())
		if err != nil {
			return err
		}
		measure := schedule.EngineMeasure(engine, 1)
		for _, variant := range []struct {
			name string
			opts compiler.Options
		}{
			{"compiler-aware", compiler.DefaultOptions()},
			{"compiler-blind", compiler.Options{}},
		} {
			prof := &profile.Profiler{Platform: device.NewPlatform(0), Options: variant.opts, Runs: cfg.ProfileRuns}
			records, err := prof.ProfileAll(g, part.Subgraphs())
			if err != nil {
				return err
			}
			var kernels int
			var cpuSum, gpuSum vclock.Seconds
			for _, r := range records {
				kernels += r.Kernels
				cpuSum += r.Time[device.CPU]
				gpuSum += r.Time[device.GPU]
			}
			s, err := schedule.New(part, records, measure)
			if err != nil {
				return err
			}
			lat, err := measure(s.Greedy())
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %-16s %9d %12s %12s %12s\n", spec.Name, variant.name, kernels, ms(cpuSum), ms(gpuSum), ms(lat))
		}
	}
	fmt.Fprintf(w, "\ncompiler-blind profiling overstates every subgraph (unfused kernels and\nlaunches); wherever the overstatement is asymmetric across devices, the\ngreedy decision flips — which is why DUET profiles compiled code (§IV-B)\n")
	return nil
}

// Abl2 isolates step 3 of Algorithm 1: greedy-only vs greedy+correction
// across all three heterogeneous models.
func Abl2(cfg Config, w io.Writer) error {
	header(w, "abl2", "Correction step contribution")
	fmt.Fprintf(w, "%-10s %12s %15s %9s\n", "model", "greedy (ms)", "+correction", "gain")
	for _, spec := range evalModels() {
		g, err := spec.Build()
		if err != nil {
			return err
		}
		e, err := buildEngine(g, cfg)
		if err != nil {
			return err
		}
		s := e.Scheduler
		greedy, err := s.Measure(s.Greedy())
		if err != nil {
			return err
		}
		gc, err := s.GreedyCorrection()
		if err != nil {
			return err
		}
		corrected, err := s.Measure(gc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s %12s %15s %8.1f%%\n", spec.Name, ms(greedy), ms(corrected), (greedy-corrected)/greedy*100)
	}
	fmt.Fprintf(w, "\ncorrection never hurts; its gain grows when greedy's communication-blind\nestimate mis-places subgraphs\n")
	return nil
}

// Abl3 studies the multi-level partitioning the paper leaves as future work
// (footnote 1): nested partitions raise subgraph counts and communication
// volume, and the end-to-end latency shows whether finer granularity pays.
func Abl3(cfg Config, w io.Writer) error {
	header(w, "abl3", "Coarse vs nested partitioning on Wide&Deep")
	g, err := models.WideDeep(models.DefaultWideDeep())
	if err != nil {
		return err
	}
	if err := compiler.InferShapes(g); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %9s %9s %12s %12s\n", "partitioning", "phases", "subgraphs", "boundaryKB", "DUET (ms)")
	for _, variant := range []struct {
		name  string
		build func() (*partition.Partition, error)
	}{
		{"coarse (paper)", func() (*partition.Partition, error) { return partition.Build(g) }},
		{"nested max=8", func() (*partition.Partition, error) { return partition.BuildNested(g, 8, 1) }},
		{"nested max=4", func() (*partition.Partition, error) { return partition.BuildNested(g, 4, 1) }},
	} {
		part, err := variant.build()
		if err != nil {
			return err
		}
		engine, err := runtime.New(part, device.NewPlatform(0), compiler.DefaultOptions())
		if err != nil {
			return err
		}
		prof := &profile.Profiler{Platform: device.NewPlatform(0), Options: compiler.DefaultOptions(), Runs: cfg.ProfileRuns}
		records, err := prof.ProfileAll(g, part.Subgraphs())
		if err != nil {
			return err
		}
		var boundary int
		for _, r := range records {
			boundary += r.InBytes
		}
		s, err := schedule.New(part, records, schedule.EngineMeasure(engine, 1))
		if err != nil {
			return err
		}
		place, err := s.GreedyCorrection()
		if err != nil {
			return err
		}
		lat, err := s.Measure(place)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %9d %9d %12.1f %12s\n", variant.name, len(part.Phases), len(part.Subgraphs()), float64(boundary)/1024, ms(lat))
	}
	fmt.Fprintf(w, "\nas the paper predicts, finer partitions add boundary traffic without\nbeating the coarse schedule\n")
	return nil
}

// Abl4 evaluates intra-device concurrency (footnote 2): the processor-
// sharing executor lets same-device subgraphs overlap instead of queueing.
func Abl4(cfg Config, w io.Writer) error {
	header(w, "abl4", "Intra-device concurrent subgraph execution")
	fmt.Fprintf(w, "%-10s %-12s %12s %15s\n", "model", "placement", "serial (ms)", "concurrent (ms)")
	for _, spec := range evalModels() {
		g, err := spec.Build()
		if err != nil {
			return err
		}
		e, err := buildEngine(g, cfg)
		if err != nil {
			return err
		}
		variants := []struct {
			name  string
			place runtime.Placement
		}{
			{"DUET", e.Placement},
			// Round-robin interleaves devices so same-device subgraphs sit
			// behind cross-device dependencies — the queueing pattern that
			// intra-device overlap relieves.
			{"round-robin", e.Scheduler.RoundRobin()},
		}
		for _, v := range variants {
			serial, err := e.Search.MeasureLatency(v.place, 1)
			if err != nil {
				return err
			}
			conc, err := e.Search.MeasureConcurrent(v.place, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %-12s %12s %15s\n", spec.Name, v.name, ms(serial[0]), ms(conc[0]))
		}
	}
	fmt.Fprintf(w, "\noverlap only helps when a device queue holds a *later-ready* subgraph\nblocking an already-ready one; the coarse phased partitions leave at most\none ready subgraph per device queue, so the numbers match — evidence for\nthe paper's footnote-2 simplification (sequential execution per device)\n")
	return nil
}

// Abl5 compares the analytic dynamic-programming placement (§IV-C's
// alternative) against greedy-correction.
func Abl5(cfg Config, w io.Writer) error {
	header(w, "abl5", "DP-based analytic placement vs greedy-correction")
	fmt.Fprintf(w, "%-10s %12s %12s %12s\n", "model", "DP (ms)", "greedy+corr", "ideal")
	for _, spec := range evalModels() {
		g, err := spec.Build()
		if err != nil {
			return err
		}
		e, err := buildEngine(g, cfg)
		if err != nil {
			return err
		}
		s := e.Scheduler
		dp, err := s.DynamicProgramming(schedule.DPOptions{Link: device.NewPCIe()})
		if err != nil {
			return err
		}
		dpLat, err := s.Measure(dp)
		if err != nil {
			return err
		}
		gc, err := s.GreedyCorrection()
		if err != nil {
			return err
		}
		gcLat, err := s.Measure(gc)
		if err != nil {
			return err
		}
		ideal := vclock.Seconds(0)
		if len(s.Records) <= 16 {
			_, ideal, err = s.Ideal()
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "%-10s %12s %12s %12s\n", spec.Name, ms(dpLat), ms(gcLat), ms(ideal))
	}
	fmt.Fprintf(w, "\nthe DP's analytic communication estimate carries modelling error (§IV-C);\nmeasured correction closes the gap to the exhaustive optimum\n")
	return nil
}
