package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	goruntime "runtime"
	"time"

	"duet/internal/compiler"
	"duet/internal/graph"
	"duet/internal/tensor"
)

// KernelBench is one measured cell of the kernel benchmark matrix: a kernel
// family at one shape, executed by one code path (packed register-blocked
// GEMM vs the legacy cache-blocked loop) on one threading substrate (the
// persistent worker pool vs forced-serial execution).
type KernelBench struct {
	Kernel  string  `json:"kernel"`  // matmul | linear | conv2d
	Shape   string  `json:"shape"`   // human-readable problem size
	Variant string  `json:"variant"` // packed | blocked
	Threads string  `json:"threads"` // pool | serial
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	GFLOPS  float64 `json:"gflops"`
}

// FusionBench is one fusion-ablation workload: a chain-heavy graph compiled
// at legacy and unconstrained fusion levels, executed warm through the
// arena. Launch counts are structural (deterministic per level); the ns
// columns are wall-clock and carry the usual host noise.
type FusionBench struct {
	Workload              string  `json:"workload"`
	LaunchesOff           int     `json:"launches_off"`
	LaunchesLegacy        int     `json:"launches_legacy"`
	LaunchesUnconstrained int     `json:"launches_unconstrained"`
	FusedGroups           int     `json:"fused_groups"`
	NsLegacy              float64 `json:"ns_legacy"`
	NsUnconstrained       float64 `json:"ns_unconstrained"`
	// Speedup is NsLegacy / NsUnconstrained — how much faster the
	// unconstrained plan runs the same graph.
	Speedup float64 `json:"speedup"`
}

// KernelsReport is the committed BENCH_kernels.json artifact: the full
// benchmark matrix plus the host context it was measured on, so kernel-level
// regressions are diffable across revisions the same way BENCH_obs.json
// tracks metric shape.
type KernelsReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick"`
	Benches    []KernelBench `json:"benches"`
	// Fusion is the unconstrained-vs-legacy fusion ablation; the geomean of
	// the per-workload speedups is the headline the bench-diff gate holds at
	// ≥ FusionSpeedupBar.
	Fusion                []FusionBench `json:"fusion"`
	FusionSpeedupGeomean  float64       `json:"fusion_speedup_geomean"`
	FusionLaunchReduction float64       `json:"fusion_launch_reduction"`
}

// WriteJSON writes the report as indented JSON.
func (r *KernelsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// benchBudget is the per-cell sampling budget at paper scale; quick mode
// runs every cell once.
const benchBudget = 300 * time.Millisecond

// FusionSpeedupBar is the wall-clock bar unconstrained fusion must clear
// over legacy fusion on the fusion-ablation workloads: the geomean of the
// per-workload speedups must stay at or above this ratio. The bench-diff
// gate (kernels/fusion/gate/speedup_ok) re-derives the 0/1 verdict from
// the recorded geomean on both the committed baseline and every fresh run.
const FusionSpeedupBar = 1.10

// timeKernel samples f until the budget is spent (at least once) and
// returns the iteration count and mean ns/op.
func timeKernel(quick bool, f func()) (int, float64) {
	f() // warm up: pack caches, arena pools, worker pool spin-up
	iters := 0
	var elapsed time.Duration
	for elapsed < benchBudget && iters < 50 {
		start := time.Now()
		f()
		elapsed += time.Since(start)
		iters++
		if quick {
			break
		}
	}
	return iters, float64(elapsed.Nanoseconds()) / float64(iters)
}

// BuildKernelsReport measures the tensor-layer compute kernels across the
// packed/blocked × pool/serial matrix. cfg.Runs below the Default scale
// (i.e. Quick) switches to single-iteration sampling.
func BuildKernelsReport(cfg Config) (*KernelsReport, error) {
	quick := cfg.Runs < Default().Runs
	rep := &KernelsReport{GoMaxProcs: goruntime.GOMAXPROCS(0), Quick: quick}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type threading struct {
		name    string
		workers int
	}
	threadings := []threading{{"pool", 0}, {"serial", 1}}
	defer tensor.SetMaxWorkers(0)

	record := func(kernel, shape, variant, threads string, flops float64, f func()) {
		iters, ns := timeKernel(quick, f)
		rep.Benches = append(rep.Benches, KernelBench{
			Kernel: kernel, Shape: shape, Variant: variant, Threads: threads,
			Iters: iters, NsPerOp: ns, GFLOPS: flops / ns,
		})
	}

	// Square matmul across the acceptance sizes.
	for _, n := range []int{64, 128, 256, 512} {
		a := tensor.Rand(rng, 1, n, n)
		b := tensor.Rand(rng, 1, n, n)
		shape := fmt.Sprintf("%dx%dx%d", n, n, n)
		flops := 2 * float64(n) * float64(n) * float64(n)
		for _, th := range threadings {
			tensor.SetMaxWorkers(th.workers)
			record("matmul", shape, "packed", th.name, flops, func() { tensor.MatMul(a, b) })
			record("matmul", shape, "blocked", th.name, flops, func() { tensor.MatMulBlocked(a, b) })
		}
	}

	// Linear layers: the serving-relevant small-batch GEMMs. The weight is
	// pinned like every graph constant, so the packed variant measures the
	// warm pack-cache path the engine actually runs — without it, small-M
	// shapes would charge a full weight repack to every call.
	for _, s := range [][3]int{{1, 1024, 1024}, {8, 512, 512}, {32, 256, 1024}} {
		bsz, k, n := s[0], s[1], s[2]
		x := tensor.Rand(rng, 1, bsz, k)
		w := tensor.Rand(rng, 1, n, k).MarkPinned()
		bias := tensor.Rand(rng, 1, n)
		shape := fmt.Sprintf("B%d K%d N%d", bsz, k, n)
		flops := 2 * float64(bsz) * float64(k) * float64(n)
		for _, th := range threadings {
			tensor.SetMaxWorkers(th.workers)
			record("linear", shape, "packed", th.name, flops, func() { tensor.Linear(x, w, bias) })
			record("linear", shape, "blocked", th.name, flops, func() { tensor.LinearBlocked(x, w, bias) })
		}
	}

	// Conv2D at two CNN-trunk shapes.
	for _, s := range [][4]int{{16, 32, 28, 3}, {32, 64, 14, 3}} {
		cin, cout, hw, kk := s[0], s[1], s[2], s[3]
		x := tensor.Rand(rng, 1, 1, cin, hw, hw)
		w := tensor.Rand(rng, 1, cout, cin, kk, kk)
		shape := fmt.Sprintf("%dx%dx%dx%d k%d", cin, cout, hw, hw, kk)
		flops := 2 * float64(cout) * float64(cin) * float64(kk*kk) * float64(hw*hw)
		for _, th := range threadings {
			tensor.SetMaxWorkers(th.workers)
			record("conv2d", shape, "packed", th.name, flops, func() { tensor.Conv2D(x, w, nil, 1, kk/2) })
			record("conv2d", shape, "blocked", th.name, flops, func() { tensor.Conv2DBlocked(x, w, nil, 1, kk/2) })
		}
	}

	tensor.SetMaxWorkers(0)
	if err := measureFusion(rep, quick, rng); err != nil {
		return nil, err
	}
	return rep, nil
}

// fusionWorkload is one graph in the fusion ablation. Workloads are sized
// like batch-1 serving activations — small tensors, long elementwise
// chains — where per-op dispatch (an allocation, a shape check, a
// parallel-for setup per op) dominates the arithmetic. Under legacy fusion
// the chains fall outside the dense[+bias][+relu|sigmoid] pattern and
// dispatch op-by-op; unconstrained fusion runs each chain as a single tape
// launch, which is exactly the overhead the paper's launch-count argument
// is about.
type fusionWorkload struct {
	name   string
	build  func(rng *rand.Rand) *graph.Graph
	inputs func(rng *rand.Rand) map[string]*tensor.Tensor
}

func fusionWorkloads() []fusionWorkload {
	const cols = 64
	return []fusionWorkload{
		{
			// A standalone elementwise chain: 30 cheap ops over a batch-1
			// activation row. Legacy fusion cannot lower it at all.
			name: "elementwise_chain",
			build: func(rng *rand.Rand) *graph.Graph {
				g := graph.New("fusion-chain")
				x := g.AddInput("x", 1, cols)
				row := g.AddConst("row", tensor.Rand(rng, 1, cols))
				cur := x
				for i := 0; i < 10; i++ {
					cur = g.Add("relu", fmt.Sprintf("c%d.relu", i), nil, cur)
					cur = g.Add("mul", fmt.Sprintf("c%d.mul", i), nil, cur, row)
					cur = g.Add("add", fmt.Sprintf("c%d.add", i), nil, cur, row)
				}
				g.SetOutputs(cur)
				return g
			},
			inputs: func(rng *rand.Rand) map[string]*tensor.Tensor {
				return map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 1, cols)}
			},
		},
		{
			// A small dense lead with an epilogue beyond the legacy pattern:
			// the whole group falls back to op-by-op under legacy.
			name: "dense_epilogue",
			build: func(rng *rand.Rand) *graph.Graph {
				g := graph.New("fusion-dense")
				x := g.AddInput("x", 1, 48)
				w := g.AddConst("w", tensor.Rand(rng, 1, 96, 48))
				row := g.AddConst("row", tensor.Rand(rng, 1, 96))
				cur := g.Add("dense", "lead", nil, x, w)
				for i := 0; i < 4; i++ {
					cur = g.Add("add", fmt.Sprintf("e%d.bias", i), nil, cur, row)
					cur = g.Add("relu", fmt.Sprintf("e%d.act", i), nil, cur)
					cur = g.Add("mul", fmt.Sprintf("e%d.scale", i), nil, cur, row)
					cur = g.Add("maximum", fmt.Sprintf("e%d.clip", i), nil, cur, row)
				}
				g.SetOutputs(cur)
				return g
			},
			inputs: func(rng *rand.Rand) map[string]*tensor.Tensor {
				return map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 1, 48)}
			},
		},
		{
			// A multi-consumer residual ladder: the forks exercise the
			// recompute-vs-materialize arbitration in the unconstrained pass.
			name: "residual_fanout",
			build: func(rng *rand.Rand) *graph.Graph {
				g := graph.New("fusion-residual")
				x := g.AddInput("x", 1, cols)
				row := g.AddConst("row", tensor.Rand(rng, 1, cols))
				cur := g.Add("add", "pre", nil, x, row)
				for i := 0; i < 8; i++ {
					act := g.Add("relu", fmt.Sprintf("r%d.act", i), nil, cur)
					scaled := g.Add("mul", fmt.Sprintf("r%d.scaled", i), nil, act, row)
					cur = g.Add("add", fmt.Sprintf("r%d.res", i), nil, scaled, cur)
				}
				g.SetOutputs(g.Add("maximum", "out", nil, cur, row))
				return g
			},
			inputs: func(rng *rand.Rand) map[string]*tensor.Tensor {
				return map[string]*tensor.Tensor{"x": tensor.Rand(rng, 1, 1, cols)}
			},
		},
	}
}

// measureFusion fills the report's fusion ablation: per-workload launch
// counts at all three fusion levels, warm-arena wall time at legacy and
// unconstrained, and the aggregate geomean speedup / launch reduction.
func measureFusion(rep *KernelsReport, quick bool, rng *rand.Rand) error {
	compileAt := func(g *graph.Graph, level compiler.FusionLevel) (*compiler.Module, error) {
		opts := compiler.DefaultOptions()
		opts.Fusion = level
		return compiler.Compile(g, opts)
	}
	logSum := 0.0
	legacyLaunches, uncLaunches := 0, 0
	for _, w := range fusionWorkloads() {
		g := w.build(rng)
		if err := compiler.InferShapes(g); err != nil {
			return fmt.Errorf("fusion workload %s: %w", w.name, err)
		}
		var mods [3]*compiler.Module
		for i, level := range []compiler.FusionLevel{compiler.FusionOff, compiler.FusionLegacy, compiler.FusionUnconstrained} {
			m, err := compileAt(g, level)
			if err != nil {
				return fmt.Errorf("fusion workload %s: %w", w.name, err)
			}
			mods[i] = m
		}
		inputs := w.inputs(rng)
		// One module run is ~10µs — below timer noise — so each timed
		// sample aggregates a block of runs and reports the per-run mean.
		const block = 64
		timeModule := func(m *compiler.Module) (float64, error) {
			ar := tensor.NewArena()
			var runErr error
			_, ns := timeKernel(quick, func() {
				for b := 0; b < block; b++ {
					outs, err := m.ExecuteArena(inputs, ar)
					if err != nil && runErr == nil {
						runErr = err
					}
					// Recycle the outputs so repeated runs measure the warm
					// steady state the engine sustains.
					for _, o := range outs {
						ar.Release(o)
					}
				}
			})
			return ns / block, runErr
		}
		nsLegacy, err := timeModule(mods[1])
		if err != nil {
			return fmt.Errorf("fusion workload %s: %w", w.name, err)
		}
		nsUnc, err := timeModule(mods[2])
		if err != nil {
			return fmt.Errorf("fusion workload %s: %w", w.name, err)
		}
		b := FusionBench{
			Workload:              w.name,
			LaunchesOff:           mods[0].LaunchCount(),
			LaunchesLegacy:        mods[1].LaunchCount(),
			LaunchesUnconstrained: mods[2].LaunchCount(),
			FusedGroups:           mods[2].FusionStats().Groups,
			NsLegacy:              nsLegacy,
			NsUnconstrained:       nsUnc,
			Speedup:               nsLegacy / nsUnc,
		}
		rep.Fusion = append(rep.Fusion, b)
		logSum += math.Log(b.Speedup)
		legacyLaunches += b.LaunchesLegacy
		uncLaunches += b.LaunchesUnconstrained
	}
	rep.FusionSpeedupGeomean = math.Exp(logSum / float64(len(rep.Fusion)))
	rep.FusionLaunchReduction = 1 - float64(uncLaunches)/float64(legacyLaunches)
	return nil
}
