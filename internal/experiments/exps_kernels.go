package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	goruntime "runtime"
	"time"

	"duet/internal/tensor"
)

// KernelBench is one measured cell of the kernel benchmark matrix: a kernel
// family at one shape, executed by one code path (packed register-blocked
// GEMM vs the legacy cache-blocked loop) on one threading substrate (the
// persistent worker pool vs forced-serial execution).
type KernelBench struct {
	Kernel  string  `json:"kernel"`  // matmul | linear | conv2d
	Shape   string  `json:"shape"`   // human-readable problem size
	Variant string  `json:"variant"` // packed | blocked
	Threads string  `json:"threads"` // pool | serial
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	GFLOPS  float64 `json:"gflops"`
}

// KernelsReport is the committed BENCH_kernels.json artifact: the full
// benchmark matrix plus the host context it was measured on, so kernel-level
// regressions are diffable across revisions the same way BENCH_obs.json
// tracks metric shape.
type KernelsReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	Quick      bool          `json:"quick"`
	Benches    []KernelBench `json:"benches"`
}

// WriteJSON writes the report as indented JSON.
func (r *KernelsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// benchBudget is the per-cell sampling budget at paper scale; quick mode
// runs every cell once.
const benchBudget = 300 * time.Millisecond

// timeKernel samples f until the budget is spent (at least once) and
// returns the iteration count and mean ns/op.
func timeKernel(quick bool, f func()) (int, float64) {
	f() // warm up: pack caches, arena pools, worker pool spin-up
	iters := 0
	var elapsed time.Duration
	for elapsed < benchBudget && iters < 50 {
		start := time.Now()
		f()
		elapsed += time.Since(start)
		iters++
		if quick {
			break
		}
	}
	return iters, float64(elapsed.Nanoseconds()) / float64(iters)
}

// BuildKernelsReport measures the tensor-layer compute kernels across the
// packed/blocked × pool/serial matrix. cfg.Runs below the Default scale
// (i.e. Quick) switches to single-iteration sampling.
func BuildKernelsReport(cfg Config) (*KernelsReport, error) {
	quick := cfg.Runs < Default().Runs
	rep := &KernelsReport{GoMaxProcs: goruntime.GOMAXPROCS(0), Quick: quick}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type threading struct {
		name    string
		workers int
	}
	threadings := []threading{{"pool", 0}, {"serial", 1}}
	defer tensor.SetMaxWorkers(0)

	record := func(kernel, shape, variant, threads string, flops float64, f func()) {
		iters, ns := timeKernel(quick, f)
		rep.Benches = append(rep.Benches, KernelBench{
			Kernel: kernel, Shape: shape, Variant: variant, Threads: threads,
			Iters: iters, NsPerOp: ns, GFLOPS: flops / ns,
		})
	}

	// Square matmul across the acceptance sizes.
	for _, n := range []int{64, 128, 256, 512} {
		a := tensor.Rand(rng, 1, n, n)
		b := tensor.Rand(rng, 1, n, n)
		shape := fmt.Sprintf("%dx%dx%d", n, n, n)
		flops := 2 * float64(n) * float64(n) * float64(n)
		for _, th := range threadings {
			tensor.SetMaxWorkers(th.workers)
			record("matmul", shape, "packed", th.name, flops, func() { tensor.MatMul(a, b) })
			record("matmul", shape, "blocked", th.name, flops, func() { tensor.MatMulBlocked(a, b) })
		}
	}

	// Linear layers: the serving-relevant small-batch GEMMs. The weight is
	// pinned like every graph constant, so the packed variant measures the
	// warm pack-cache path the engine actually runs — without it, small-M
	// shapes would charge a full weight repack to every call.
	for _, s := range [][3]int{{1, 1024, 1024}, {8, 512, 512}, {32, 256, 1024}} {
		bsz, k, n := s[0], s[1], s[2]
		x := tensor.Rand(rng, 1, bsz, k)
		w := tensor.Rand(rng, 1, n, k).MarkPinned()
		bias := tensor.Rand(rng, 1, n)
		shape := fmt.Sprintf("B%d K%d N%d", bsz, k, n)
		flops := 2 * float64(bsz) * float64(k) * float64(n)
		for _, th := range threadings {
			tensor.SetMaxWorkers(th.workers)
			record("linear", shape, "packed", th.name, flops, func() { tensor.Linear(x, w, bias) })
			record("linear", shape, "blocked", th.name, flops, func() { tensor.LinearBlocked(x, w, bias) })
		}
	}

	// Conv2D at two CNN-trunk shapes.
	for _, s := range [][4]int{{16, 32, 28, 3}, {32, 64, 14, 3}} {
		cin, cout, hw, kk := s[0], s[1], s[2], s[3]
		x := tensor.Rand(rng, 1, 1, cin, hw, hw)
		w := tensor.Rand(rng, 1, cout, cin, kk, kk)
		shape := fmt.Sprintf("%dx%dx%dx%d k%d", cin, cout, hw, hw, kk)
		flops := 2 * float64(cout) * float64(cin) * float64(kk*kk) * float64(hw*hw)
		for _, th := range threadings {
			tensor.SetMaxWorkers(th.workers)
			record("conv2d", shape, "packed", th.name, flops, func() { tensor.Conv2D(x, w, nil, 1, kk/2) })
			record("conv2d", shape, "blocked", th.name, flops, func() { tensor.Conv2DBlocked(x, w, nil, 1, kk/2) })
		}
	}

	tensor.SetMaxWorkers(0)
	return rep, nil
}
