package experiments

import (
	"encoding/json"
	"io"

	"duet/internal/stats"
)

// Report is a machine-readable snapshot of the quantitative experiments —
// the data behind Figs. 11, 13-17 and Table III — for plotting or
// regression tracking across versions.
type Report struct {
	Schema int   `json:"schema"`
	Seed   int64 `json:"seed"`
	Runs   int   `json:"runs"`

	Fig11 []ReportSeries `json:"fig11"`
	Fig13 *Fig13Result   `json:"fig13"`
	Fig14 []SweepPoint   `json:"fig14"`
	Fig15 []SweepPoint   `json:"fig15"`
	Fig16 []SweepPoint   `json:"fig16"`
	Fig17 []SweepPoint   `json:"fig17"`
	Tab3  []Tab3Row      `json:"tab3"`
}

// ReportSeries is one model's Fig. 11/12 measurement set.
type ReportSeries struct {
	Model        string        `json:"model"`
	Framework    string        `json:"framework"`
	FrameworkCPU stats.Summary `json:"framework_cpu"`
	FrameworkGPU stats.Summary `json:"framework_gpu"`
	TVMCPU       stats.Summary `json:"tvm_cpu"`
	TVMGPU       stats.Summary `json:"tvm_gpu"`
	DUET         stats.Summary `json:"duet"`
	Placement    string        `json:"placement"`
	FellBack     bool          `json:"fell_back"`
}

// BuildReport runs the quantitative experiments and assembles the report.
func BuildReport(cfg Config) (*Report, error) {
	r := &Report{Schema: 1, Seed: cfg.Seed, Runs: cfg.Runs}

	runs, err := Fig11Data(cfg)
	if err != nil {
		return nil, err
	}
	for _, m := range runs {
		r.Fig11 = append(r.Fig11, ReportSeries{
			Model:        m.Model,
			Framework:    m.Framework,
			FrameworkCPU: m.FrameworkCPU,
			FrameworkGPU: m.FrameworkGPU,
			TVMCPU:       m.TVMCPU,
			TVMGPU:       m.TVMGPU,
			DUET:         m.DUET,
			Placement:    m.Placement,
			FellBack:     m.FellBack,
		})
	}
	if r.Fig13, err = Fig13Data(cfg); err != nil {
		return nil, err
	}
	if r.Fig14, err = Fig14Data(cfg); err != nil {
		return nil, err
	}
	if r.Fig15, err = Fig15Data(cfg); err != nil {
		return nil, err
	}
	if r.Fig16, err = Fig16Data(cfg); err != nil {
		return nil, err
	}
	if r.Fig17, err = Fig17Data(cfg); err != nil {
		return nil, err
	}
	if r.Tab3, err = Tab3Data(cfg); err != nil {
		return nil, err
	}
	return r, nil
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
