package experiments

import (
	"fmt"
	"io"
	"strings"

	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/runtime"
	"duet/internal/stats"
	"duet/internal/vclock"
)

func init() {
	register("fig4", "Execution timeline of Wide&Deep on GPU vs CPU vs DUET", Fig4)
	register("fig5", "CPU-GPU communication cost vs message size", Fig5)
	register("tab1", "Model parameters of Wide&Deep, Siamese, MT-DNN", Tab1)
	register("fig11", "End-to-end latency of frameworks, TVM, and DUET", Fig11)
	register("tab2", "Per-subgraph computation cost and placement decisions", Tab2)
	register("fig12", "P50/P99/P99.9 tail latency: TVM-GPU vs DUET", Fig12)
	register("tab3", "Traditional models (ResNet/VGG/SqueezeNet/GoogLeNet): fallback behaviour", Tab3)
}

// Fig4 renders execution timelines of Wide&Deep under all-GPU, all-CPU and
// the DUET placement, reproducing the RNN-dominates-GPU / CNN-dominates-CPU
// picture of the paper's Fig. 4.
func Fig4(cfg Config, w io.Writer) error {
	header(w, "fig4", "Wide&Deep execution timeline")
	g, err := models.WideDeep(models.DefaultWideDeep())
	if err != nil {
		return err
	}
	e, err := buildEngine(g, cfg)
	if err != nil {
		return err
	}
	n := e.Runtime.NumSubgraphs()
	for _, variant := range []struct {
		name  string
		place runtime.Placement
	}{
		{"TVM-GPU", runtime.Uniform(n, device.GPU)},
		{"TVM-CPU", runtime.Uniform(n, device.CPU)},
		{"DUET", e.Placement},
	} {
		res, err := e.Runtime.Run(nil, variant.place, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n-- %s (end-to-end %s ms; %s) --\n", variant.name, ms(res.Latency), res.Utilization())
		for _, s := range res.Timeline {
			bar := timelineBar(s.Start, s.End, res.Latency)
			fmt.Fprintf(w, "  %-9s %8s..%8s ms %s %s\n", s.Device, ms(s.Start), ms(s.End), bar, s.Label)
		}
	}
	return nil
}

func timelineBar(start, end, total vclock.Seconds) string {
	const width = 40
	if total <= 0 {
		return ""
	}
	s := int(start / total * width)
	e := int(end / total * width)
	if e <= s {
		e = s + 1
	}
	if e > width {
		e = width
	}
	return strings.Repeat(" ", s) + strings.Repeat("█", e-s) + strings.Repeat(" ", width-e)
}

// Fig5 sweeps the interconnect with point-to-point bulk transfers from 4 B
// to 64 MB, reporting mean and P99 latency — the linear curve of Fig. 5.
func Fig5(cfg Config, w io.Writer) error {
	header(w, "fig5", "CPU↔GPU transfer latency vs message size")
	plat := device.NewPlatform(cfg.Seed)
	fmt.Fprintf(w, "%12s %14s %14s %14s\n", "bytes", "model (ms)", "mean (ms)", "p99 (ms)")
	for size := 4; size <= 64<<20; size *= 4 {
		samples := make([]vclock.Seconds, cfg.Runs)
		for i := range samples {
			samples[i] = plat.Link.SampleTransferTime(size)
		}
		s, ok := stats.TrySummarize(samples)
		if !ok {
			continue // zero-run smoke config: nothing to report for this size
		}
		fmt.Fprintf(w, "%12d %14s %14s %14s\n", size, ms(plat.Link.TransferTime(size)), ms(s.Mean), ms(s.P99))
	}
	return nil
}

// Tab1 reports the evaluation models' parameters (Table I).
func Tab1(cfg Config, w io.Writer) error {
	header(w, "tab1", "Model parameters")
	wd := models.DefaultWideDeep()
	si := models.DefaultSiamese()
	mt := models.DefaultMTDNN()
	gWD, err := models.WideDeep(wd)
	if err != nil {
		return err
	}
	gSI, err := models.Siamese(si)
	if err != nil {
		return err
	}
	gMT, err := models.MTDNN(mt)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s | batch=%d seq=%d hidden=%d rnn_layers=%d ffn=%dx%d cnn=ResNet-%d@%d | params=%.1fM nodes=%d\n",
		"Wide&Deep", wd.Batch, wd.SeqLen, wd.RNNHidden, wd.RNNLayers, wd.FFNHidden, wd.FFNWidth, wd.CNNDepth, wd.ImageSize,
		float64(models.ParamCount(gWD))/1e6, gWD.Len())
	fmt.Fprintf(w, "%-10s | batch=%d seq=%d hidden=%d layers=%d embed=%d vocab=%d | params=%.1fM nodes=%d\n",
		"Siamese", si.Batch, si.SeqLen, si.Hidden, si.Layers, si.EmbedDim, si.Vocab,
		float64(models.ParamCount(gSI))/1e6, gSI.Len())
	fmt.Fprintf(w, "%-10s | batch=%d seq=%d dim=%d heads=%d layers=%d ffn=%d tasks=%d | params=%.1fM nodes=%d\n",
		"MT-DNN", mt.Batch, mt.SeqLen, mt.ModelDim, mt.Heads, mt.Layers, mt.FFNDim, mt.Tasks,
		float64(models.ParamCount(gMT))/1e6, gMT.Len())
	return nil
}

// Fig11Data runs the headline end-to-end comparison for all three models.
func Fig11Data(cfg Config) ([]*ModelRun, error) {
	var runs []*ModelRun
	for _, spec := range evalModels() {
		r, err := runModel(spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		runs = append(runs, r)
	}
	return runs, nil
}

// Fig11 renders the end-to-end latency comparison (Fig. 11).
func Fig11(cfg Config, w io.Writer) error {
	header(w, "fig11", "End-to-end latency (ms), batch 1")
	runs, err := Fig11Data(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %6s %13s %13s %9s %9s %9s %14s %14s\n",
		"model", "fw", "fw-CPU", "fw-GPU", "TVM-CPU", "TVM-GPU", "DUET", "vs TVM-GPU", "vs TVM-CPU")
	for _, r := range runs {
		fmt.Fprintf(w, "%-10s %6s %13s %13s %9s %9s %9s %13.2fx %13.2fx\n",
			r.Model, r.Framework,
			ms(r.FrameworkCPU.Mean), ms(r.FrameworkGPU.Mean),
			ms(r.TVMCPU.Mean), ms(r.TVMGPU.Mean), ms(r.DUET.Mean),
			stats.Speedup(r.TVMGPU.Mean, r.DUET.Mean), stats.Speedup(r.TVMCPU.Mean, r.DUET.Mean))
	}
	fmt.Fprintf(w, "\npaper shape: DUET 1.5-2.3x vs TVM-GPU, 1.3-15.9x vs TVM-CPU,\n             2.1-8.4x vs frameworks on GPU, 2.3-18.8x vs frameworks on CPU\n")
	return nil
}

// Tab2 renders the per-subgraph profile and placement decisions (Table II).
func Tab2(cfg Config, w io.Writer) error {
	header(w, "tab2", "Subgraph computation cost and placement")
	for _, spec := range evalModels() {
		g, err := spec.Build()
		if err != nil {
			return err
		}
		e, err := buildEngine(g, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s (placement %s, fellback=%v):\n", spec.Name, e.Placement, e.FellBack)
		for _, row := range e.PlacementTable() {
			fmt.Fprintf(w, "  %s\n", row)
		}
	}
	return nil
}

// Fig12 renders tail latencies of TVM-GPU vs DUET (Fig. 12).
func Fig12(cfg Config, w io.Writer) error {
	header(w, "fig12", "Tail latency (ms): TVM-GPU vs DUET")
	runs, err := Fig11Data(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-9s %9s %9s %9s\n", "model", "engine", "P50", "P99", "P99.9")
	for _, r := range runs {
		fmt.Fprintf(w, "%-10s %-9s %9s %9s %9s\n", r.Model, "TVM-GPU", ms(r.TVMGPU.P50), ms(r.TVMGPU.P99), ms(r.TVMGPU.P999))
		fmt.Fprintf(w, "%-10s %-9s %9s %9s %9s  (speedup %0.2fx / %0.2fx / %0.2fx)\n", "", "DUET",
			ms(r.DUET.P50), ms(r.DUET.P99), ms(r.DUET.P999),
			stats.Speedup(r.TVMGPU.P50, r.DUET.P50), stats.Speedup(r.TVMGPU.P99, r.DUET.P99), stats.Speedup(r.TVMGPU.P999, r.DUET.P999))
	}
	fmt.Fprintf(w, "\npaper shape: 1.3-2.4x at P99 and 1.1-2.1x at P99.9, smaller than mean speedups\n")
	return nil
}

// Tab3Row is one traditional-model comparison row.
type Tab3Row struct {
	Model   string
	TVMCPU  vclock.Seconds
	TVMGPU  vclock.Seconds
	DUET    vclock.Seconds
	Uniform bool
}

// Tab3Data measures the traditional sequential models (ResNet in the
// paper; VGG-16 and SqueezeNet added since §III-A names them as further
// sequential-chain networks).
func Tab3Data(cfg Config) ([]Tab3Row, error) {
	specs := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"ResNet-18", func() (*graph.Graph, error) { return models.ResNet(models.DefaultResNet(18)) }},
		{"ResNet-50", func() (*graph.Graph, error) { return models.ResNet(models.DefaultResNet(50)) }},
		{"VGG-16", func() (*graph.Graph, error) { return models.VGG(models.DefaultVGG()) }},
		{"SqueezeNet", func() (*graph.Graph, error) { return models.SqueezeNet(models.DefaultSqueezeNet()) }},
		{"GoogLeNet", func() (*graph.Graph, error) { return models.GoogLeNet(models.DefaultGoogLeNet()) }},
	}
	var rows []Tab3Row
	for _, spec := range specs {
		g, err := spec.build()
		if err != nil {
			return nil, err
		}
		e, err := buildEngine(g, cfg)
		if err != nil {
			return nil, err
		}
		duet, err := e.Measure(cfg.Runs)
		if err != nil {
			return nil, err
		}
		cpu, err := e.MeasureUniform(device.CPU, cfg.Runs)
		if err != nil {
			return nil, err
		}
		gpu, err := e.MeasureUniform(device.GPU, cfg.Runs)
		if err != nil {
			return nil, err
		}
		uniform := true
		for _, k := range e.Placement {
			if k != e.Placement[0] {
				uniform = false
			}
		}
		rows = append(rows, Tab3Row{
			Model:   spec.name,
			TVMCPU:  vclock.Mean(cpu),
			TVMGPU:  vclock.Mean(gpu),
			DUET:    vclock.Mean(duet),
			Uniform: uniform,
		})
	}
	return rows, nil
}

// Tab3 renders the ResNet fallback study (Table III).
func Tab3(cfg Config, w io.Writer) error {
	header(w, "tab3", "Traditional models: ResNet end-to-end latency (ms)")
	rows, err := Tab3Data(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %9s %9s %9s %10s %22s\n", "model", "TVM-CPU", "TVM-GPU", "DUET", "DUET/GPU", "single-device placement")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9s %9s %9s %9.3fx %22v\n", r.Model, ms(r.TVMCPU), ms(r.TVMGPU), ms(r.DUET), r.DUET/r.TVMGPU, r.Uniform)
	}
	fmt.Fprintf(w, "\npaper shape: DUET offers the same performance as the best baseline (TVM-GPU)\n")
	return nil
}
