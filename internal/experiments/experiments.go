// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI). Each experiment builds the relevant models, runs the
// DUET pipeline and the baselines on the modelled platform, and renders the
// same rows/series the paper reports. EXPERIMENTS.md records paper-reported
// versus measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"duet/internal/baseline"
	"duet/internal/core"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/stats"
	"duet/internal/vclock"
)

// Config controls experiment scale.
type Config struct {
	// Seed drives all noise and workloads.
	Seed int64
	// Runs is the number of latency samples per configuration (the paper
	// measures 5000 runs per configuration).
	Runs int
	// ProfileRuns is the profiler's repetition count (paper: 500).
	ProfileRuns int
}

// Default reproduces the paper's measurement scale.
func Default() Config { return Config{Seed: 42, Runs: 5000, ProfileRuns: 500} }

// Quick is a reduced-scale configuration for smoke tests and benchmarks.
func Quick() Config { return Config{Seed: 42, Runs: 100, ProfileRuns: 10} }

// Experiment is a registered, runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(id, title string, run func(cfg Config, w io.Writer) error) {
	registry[id] = Experiment{ID: id, Title: title, Run: run}
}

// All returns every registered experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// --- shared helpers ---

// buildEngine assembles a DUET engine for a model graph.
func buildEngine(g *graph.Graph, cfg Config) (*core.Engine, error) {
	c := core.DefaultConfig(cfg.Seed)
	c.ProfileRuns = cfg.ProfileRuns
	return core.Build(g, c)
}

// evalModels lists the three heterogeneous evaluation models (Table I).
type modelSpec struct {
	Name  string
	Build func() (*graph.Graph, error)
	// Framework names the reference implementation the paper compares
	// against for this model.
	Framework string
}

func evalModels() []modelSpec {
	return []modelSpec{
		{"Wide&Deep", func() (*graph.Graph, error) { return models.WideDeep(models.DefaultWideDeep()) }, "PyTorch"},
		{"Siamese", func() (*graph.Graph, error) { return models.Siamese(models.DefaultSiamese()) }, "TensorFlow"},
		{"MT-DNN", func() (*graph.Graph, error) { return models.MTDNN(models.DefaultMTDNN()) }, "PyTorch"},
	}
}

// ModelRun holds every comparison series for one model.
type ModelRun struct {
	Model        string
	Framework    string
	FrameworkCPU stats.Summary
	FrameworkGPU stats.Summary
	TVMCPU       stats.Summary
	TVMGPU       stats.Summary
	DUET         stats.Summary
	Placement    string
	FellBack     bool
	Engine       *core.Engine
}

// runModel measures all five series of Fig. 11 for one model.
func runModel(spec modelSpec, cfg Config) (*ModelRun, error) {
	g, err := spec.Build()
	if err != nil {
		return nil, err
	}
	e, err := buildEngine(g, cfg)
	if err != nil {
		return nil, err
	}
	fw, err := baseline.New(spec.Framework, g, device.NewPlatform(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	duet, err := e.Measure(cfg.Runs)
	if err != nil {
		return nil, err
	}
	tvmCPU, err := e.MeasureUniform(device.CPU, cfg.Runs)
	if err != nil {
		return nil, err
	}
	tvmGPU, err := e.MeasureUniform(device.GPU, cfg.Runs)
	if err != nil {
		return nil, err
	}
	// TrySummarize instead of Summarize: a degenerate configuration (zero
	// runs, or a sweep point whose window drained empty) yields zero
	// summaries rather than a panic deep inside an experiment driver.
	summarize := func(samples []vclock.Seconds) stats.Summary {
		s, _ := stats.TrySummarize(samples)
		return s
	}
	return &ModelRun{
		Model:        spec.Name,
		Framework:    spec.Framework,
		FrameworkCPU: summarize(fw.Measure(device.CPU, cfg.Runs)),
		FrameworkGPU: summarize(fw.Measure(device.GPU, cfg.Runs)),
		TVMCPU:       summarize(tvmCPU),
		TVMGPU:       summarize(tvmGPU),
		DUET:         summarize(duet),
		Placement:    e.Placement.String(),
		FellBack:     e.FellBack,
		Engine:       e,
	}, nil
}

func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s: %s ===\n", id, title)
}

func ms(t vclock.Seconds) string { return stats.Ms(t) }
