package relay

import (
	"fmt"

	"duet/internal/graph"
	"duet/internal/tensor"
)

// ToGraph lowers a module to the adjacency-list graph IR, resolving @const
// references from weights. This is the visitor-pattern translation the paper
// performs on Relay before partitioning (§V).
func ToGraph(m *Module, name string, weights map[string]*tensor.Tensor) (*graph.Graph, error) {
	g := graph.New(name)
	env := make(map[string]graph.NodeID, len(m.Params)+len(m.Bindings))
	consts := make(map[string]graph.NodeID)

	var err error
	m.Visit(func(p Param) {
		if err != nil {
			return
		}
		if _, dup := env[p.Name]; dup {
			err = fmt.Errorf("relay: duplicate name %%%s", p.Name)
			return
		}
		env[p.Name] = g.AddInput(p.Name, p.Shape...)
	}, func(b Binding) {
		if err != nil {
			return
		}
		inputs := make([]graph.NodeID, len(b.Args))
		for i, a := range b.Args {
			if a.IsConst {
				id, ok := consts[a.Name]
				if !ok {
					w, found := weights[a.Name]
					if !found {
						err = fmt.Errorf("relay: binding %%%s references unknown weight @%s", b.Name, a.Name)
						return
					}
					if g.NodeByName(a.Name) != nil {
						err = fmt.Errorf("relay: weight @%s collides with a %%%s binding or parameter name", a.Name, a.Name)
						return
					}
					id = g.AddConst(a.Name, w)
					consts[a.Name] = id
				}
				inputs[i] = id
				continue
			}
			id, ok := env[a.Name]
			if !ok {
				err = fmt.Errorf("relay: binding %%%s references undefined %%%s", b.Name, a.Name)
				return
			}
			inputs[i] = id
		}
		if _, dup := env[b.Name]; dup {
			err = fmt.Errorf("relay: duplicate name %%%s", b.Name)
			return
		}
		env[b.Name] = g.Add(b.Op, b.Name, b.Attrs.Clone(), inputs...)
	})
	if err != nil {
		return nil, err
	}

	outs := make([]graph.NodeID, len(m.Results))
	for i, r := range m.Results {
		id, ok := env[r]
		if !ok {
			return nil, fmt.Errorf("relay: result references undefined %%%s", r)
		}
		outs[i] = id
	}
	g.SetOutputs(outs...)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromGraph raises a graph back to a module plus its weight environment —
// the inverse translation used to hand partitioned subgraphs back to the
// compiler as Relay programs. Input placeholders become parameters and const
// nodes become @weights keyed by node name.
func FromGraph(g *graph.Graph) (*Module, map[string]*tensor.Tensor, error) {
	m := &Module{}
	weights := make(map[string]*tensor.Tensor)
	isConst := make(map[graph.NodeID]bool)

	for _, n := range g.Nodes() {
		switch {
		case n.IsInput():
			m.Params = append(m.Params, Param{Name: n.Name, Shape: append([]int(nil), n.Shape...)})
		case n.IsConst():
			if n.Value == nil {
				return nil, nil, fmt.Errorf("relay: const node %q has no value", n.Name)
			}
			weights[n.Name] = n.Value
			isConst[n.ID] = true
		default:
			b := Binding{Name: n.Name, Op: n.Op, Attrs: n.Attrs.Clone()}
			for _, in := range n.Inputs {
				b.Args = append(b.Args, Arg{Name: g.Node(in).Name, IsConst: isConst[in]})
			}
			m.Bindings = append(m.Bindings, b)
		}
	}
	for _, o := range g.Outputs() {
		m.Results = append(m.Results, g.Node(o).Name)
	}
	if len(m.Results) == 0 {
		return nil, nil, fmt.Errorf("relay: graph %q has no outputs", g.Name)
	}
	return m, weights, nil
}
