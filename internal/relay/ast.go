// Package relay implements a small expression-oriented intermediate
// representation modelled on TVM's Relay (paper §V). Programs are pure
// let-binding sequences over tensor operators, written in a BNF grammar:
//
//	module  := "fn" "(" params ")" "{" bindings result "}"
//	param   := "%" ident ":" "Tensor" "[" "(" dims ")" "]"
//	binding := "%" ident "=" ident "(" args ")" [ attrs ] ";"
//	arg     := "%" ident | "@" ident            // @ references a weight
//	attrs   := "{" ident "=" value { "," ... } "}"
//	value   := int | "[" int { "," int } "]" | string
//	result  := ref | "(" ref { "," ref } ")"
//
// DUET translates this representation to and from the adjacency-list graph
// IR (graph.Graph) with a visitor, mirroring Fig. 10 of the paper.
package relay

import (
	"fmt"
	"sort"
	"strings"

	"duet/internal/graph"
)

// Param is a function parameter: a runtime input tensor with a shape.
type Param struct {
	Name  string
	Shape []int
}

// Arg is an operand reference: a %binding/%param or a @constant.
type Arg struct {
	Name    string
	IsConst bool
}

// Binding is one let-binding: %name = op(args) {attrs}.
type Binding struct {
	Name  string
	Op    string
	Args  []Arg
	Attrs graph.Attrs
}

// Module is a single-function Relay program.
type Module struct {
	Params   []Param
	Bindings []Binding
	Results  []string // names of the returned bindings/params
}

// Visit walks the module in program order, calling param for each parameter
// and bind for each binding. It is the visitor the graph translation is
// built on.
func (m *Module) Visit(param func(Param), bind func(Binding)) {
	for _, p := range m.Params {
		param(p)
	}
	for _, b := range m.Bindings {
		bind(b)
	}
}

// String pretty-prints the module in the grammar above; Parse(m.String())
// reproduces an equivalent module.
func (m *Module) String() string {
	var b strings.Builder
	b.WriteString("fn (")
	for i, p := range m.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%%%s: Tensor[(%s)]", p.Name, joinInts(p.Shape))
	}
	b.WriteString(") {\n")
	for _, bd := range m.Bindings {
		fmt.Fprintf(&b, "  %%%s = %s(", bd.Name, bd.Op)
		for i, a := range bd.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			if a.IsConst {
				b.WriteString("@" + a.Name)
			} else {
				b.WriteString("%" + a.Name)
			}
		}
		b.WriteString(")")
		if len(bd.Attrs) > 0 {
			b.WriteString(" {")
			keys := make([]string, 0, len(bd.Attrs))
			for k := range bd.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for i, k := range keys {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s=%s", k, formatAttr(bd.Attrs[k]))
			}
			b.WriteString("}")
		}
		b.WriteString(";\n")
	}
	b.WriteString("  (")
	for i, r := range m.Results {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("%" + r)
	}
	b.WriteString(")\n}\n")
	return b.String()
}

func formatAttr(v interface{}) string {
	switch x := v.(type) {
	case int:
		return fmt.Sprintf("%d", x)
	case string:
		return fmt.Sprintf("%q", x)
	case []int:
		return "[" + joinInts(x) + "]"
	default:
		panic(fmt.Sprintf("relay: unsupported attribute type %T", v))
	}
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ", ")
}
