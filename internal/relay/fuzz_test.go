package relay

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that accepted programs
// survive a print/reparse round trip. The seed corpus runs as a regular
// test; `go test -fuzz=FuzzParse ./internal/relay` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sample,
		`fn (%x: Tensor[(2)]) { %a = relu(%x); %a }`,
		`fn () { %a = relu(%b); %a }`,
		`fn (%x: Tensor[(1, 2, 3)]) { %a = reshape(%x) {shape=[6, -1]}; (%a) }`,
		`fn (%x: Tensor[(2)]) { %a = add(%x, @w); %a }`,
		`fn (%x: Tensor[(2)]) { (%x,) }`,
		`fn (%x: Tensor[(2)]) { %a = f(%x) {k="v", n=3, l=[1]}; %a }`,
		"fn (%x: Tensor[(2)]) {\n// comment\n %a = relu(%x); %a }",
		`fn (%x: Tensor[(-1)]) { %x }`,
		`fn(%x:Tensor[(2)]){%a=relu(%x);%a}`,
		``, `fn`, `fn (`, `{{{`, `%%%`, `fn (%x: Tensor[(2)]) {`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		printed := m.String()
		m2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if m2.String() != printed {
			t.Fatalf("print is not a fixed point:\n%q\nvs\n%q", printed, m2.String())
		}
	})
}

// FuzzParseNoCrashOnMutations stresses structural mutations of a valid
// program.
func FuzzParseNoCrashOnMutations(f *testing.F) {
	base := `fn (%x: Tensor[(1, 8)]) { %a = dense(%x, @w); %b = relu(%a); %b }`
	for i := 0; i < len(base); i += 7 {
		f.Add(base[:i] + base[min(i+3, len(base)):])
	}
	f.Add(strings.Repeat("(", 1000))
	f.Add(strings.Repeat("%a = relu(%a);", 100))
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src) // must not panic or hang
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
