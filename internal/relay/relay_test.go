package relay

import (
	"strings"
	"testing"

	"duet/internal/graph"
	"duet/internal/tensor"
)

const sample = `
fn (%x: Tensor[(1, 8)], %y: Tensor[(1, 8)]) {
  %a = relu(%x);
  %b = dense(%a, @w, @bias);
  %c = add(%b, %y);
  %d = concat(%a, %c) {axis=1};
  (%c, %d)
}
`

func sampleWeights() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{
		"w":    tensor.Ones(8, 8),
		"bias": tensor.New(8),
	}
}

func TestParseSample(t *testing.T) {
	m, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Params) != 2 || m.Params[0].Name != "x" || !tensor.ShapeEq(m.Params[1].Shape, []int{1, 8}) {
		t.Fatalf("params = %+v", m.Params)
	}
	if len(m.Bindings) != 4 {
		t.Fatalf("bindings = %d", len(m.Bindings))
	}
	b := m.Bindings[1]
	if b.Op != "dense" || !b.Args[1].IsConst || b.Args[1].Name != "w" {
		t.Fatalf("dense binding wrong: %+v", b)
	}
	if m.Bindings[3].Attrs.Int("axis", -99) != 1 {
		t.Fatalf("attrs not parsed: %+v", m.Bindings[3].Attrs)
	}
	if len(m.Results) != 2 || m.Results[1] != "d" {
		t.Fatalf("results = %v", m.Results)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	m, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	printed := m.String()
	m2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if m2.String() != printed {
		t.Fatalf("print/parse not a fixed point:\n%s\nvs\n%s", printed, m2.String())
	}
}

func TestParseSingleResult(t *testing.T) {
	m, err := Parse(`fn (%x: Tensor[(2)]) { %a = relu(%x); %a }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Results) != 1 || m.Results[0] != "a" {
		t.Fatalf("results = %v", m.Results)
	}
}

func TestParseComments(t *testing.T) {
	src := "// header\nfn (%x: Tensor[(2)]) {\n  // compute\n  %a = relu(%x);\n  %a\n}"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseAttrValueKinds(t *testing.T) {
	m, err := Parse(`fn (%x: Tensor[(2, 2)]) { %a = reshape(%x) {shape=[4, -1], mode="row", k=3}; %a }`)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Bindings[0].Attrs
	if got := a.Ints("shape"); len(got) != 2 || got[1] != -1 {
		t.Fatalf("shape attr = %v", got)
	}
	if a.Str("mode", "") != "row" || a.Int("k", 0) != 3 {
		t.Fatalf("attrs = %v", a)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"fn () { }",
		"fn (%x: Tensor[(2)]) { %a = relu(%x) %a }", // missing semicolon
		"fn (%x: Tensor[(2)]) { %a = relu($x); %a }",
		"fn (%x: Tensor[(2)]) { %a = relu(%x); %a } extra",
		`fn (%x: Tensor[(2)]) { %a = relu(%x) {k="unterminated}; %a }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestToGraph(t *testing.T) {
	m, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ToGraph(m, "sample", sampleWeights())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 inputs + 2 consts + 4 bindings = 8 nodes.
	if g.Len() != 8 {
		t.Fatalf("graph has %d nodes, want 8", g.Len())
	}
	if g.NodeByName("w") == nil || !g.NodeByName("w").IsConst() {
		t.Fatalf("weight const missing")
	}
	if len(g.Outputs()) != 2 {
		t.Fatalf("outputs = %v", g.Outputs())
	}
}

func TestToGraphUnknownWeight(t *testing.T) {
	m, _ := Parse(sample)
	if _, err := ToGraph(m, "s", map[string]*tensor.Tensor{"w": tensor.Ones(8, 8)}); err == nil || !strings.Contains(err.Error(), "bias") {
		t.Fatalf("expected unknown-weight error, got %v", err)
	}
}

func TestToGraphUndefinedRef(t *testing.T) {
	m, err := Parse(`fn (%x: Tensor[(2)]) { %a = relu(%zzz); %a }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ToGraph(m, "s", nil); err == nil {
		t.Fatalf("expected undefined-reference error")
	}
}

func TestToGraphDuplicateName(t *testing.T) {
	m := &Module{
		Params:   []Param{{Name: "x", Shape: []int{2}}},
		Bindings: []Binding{{Name: "x", Op: "relu", Args: []Arg{{Name: "x"}}}},
		Results:  []string{"x"},
	}
	if _, err := ToGraph(m, "s", nil); err == nil {
		t.Fatalf("expected duplicate-name error")
	}
}

func TestFromGraphRoundTrip(t *testing.T) {
	m, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	w := sampleWeights()
	g, err := ToGraph(m, "sample", w)
	if err != nil {
		t.Fatal(err)
	}
	m2, w2, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2) != 2 {
		t.Fatalf("weights round trip = %d entries", len(w2))
	}
	g2, err := ToGraph(m2, "sample2", w2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() {
		t.Fatalf("round-trip node count %d != %d", g2.Len(), g.Len())
	}
	// Structure must match node-for-node by name.
	for _, n := range g.Nodes() {
		n2 := g2.NodeByName(n.Name)
		if n2 == nil || n2.Op != n.Op || len(n2.Inputs) != len(n.Inputs) {
			t.Fatalf("node %q differs after round trip", n.Name)
		}
		for i := range n.Inputs {
			if g.Node(n.Inputs[i]).Name != g2.Node(n2.Inputs[i]).Name {
				t.Fatalf("node %q input %d differs", n.Name, i)
			}
		}
	}
	// And the textual form is a fixed point.
	if m2.String() != mustFromGraph(t, g2).String() {
		t.Fatalf("textual round trip diverges")
	}
}

func mustFromGraph(t *testing.T, g *graph.Graph) *Module {
	t.Helper()
	m, _, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFromGraphConstWithoutValue(t *testing.T) {
	g := graph.New("g")
	id := g.Add(graph.OpConst, "w", nil)
	r := g.Add("relu", "r", nil, id)
	g.SetOutputs(r)
	if _, _, err := FromGraph(g); err == nil {
		t.Fatalf("expected error for const without value")
	}
}

func TestToGraphWeightNameCollision(t *testing.T) {
	m, err := Parse(`fn (%x: Tensor[(2)]) { %w = relu(%x); %a = add(%w, @w); %a }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ToGraph(m, "c", map[string]*tensor.Tensor{"w": tensor.Ones(2)})
	if err == nil || !strings.Contains(err.Error(), "collides") {
		t.Fatalf("expected collision error, got %v", err)
	}
}
