package relay

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"duet/internal/graph"
)

// Parse reads a module in the package grammar. It returns a descriptive
// error (with byte offset) on malformed input.
func Parse(src string) (*Module, error) {
	p := &parser{src: src}
	m, err := p.module()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errf("trailing input")
	}
	return m, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("relay: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		// Line comments: // ... \n
		if c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		break
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) expect(tok string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		return p.errf("expected %q", tok)
	}
	p.pos += len(tok)
	return nil
}

func (p *parser) accept(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) int() (int, error) {
	p.skipSpace()
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start || (p.pos == start+1 && p.src[start] == '-') {
		return 0, p.errf("expected integer")
	}
	return strconv.Atoi(p.src[start:p.pos])
}

func (p *parser) module() (*Module, error) {
	if err := p.expect("fn"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	m := &Module{}
	for !p.accept(")") {
		if len(m.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		param, err := p.param()
		if err != nil {
			return nil, err
		}
		m.Params = append(m.Params, param)
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() == '(' {
			break // tuple result
		}
		if p.peek() != '%' {
			return nil, p.errf("expected binding or result")
		}
		// Distinguish binding (%name = ...) from result (%name) / (tuple).
		save := p.pos
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.accept("=") {
			b, err := p.bindingTail(name)
			if err != nil {
				return nil, err
			}
			m.Bindings = append(m.Bindings, b)
			continue
		}
		// Single-name result.
		p.pos = save
		break
	}
	// Result: %name or ( %a, %b, ... ).
	p.skipSpace()
	if p.accept("(") {
		for !p.accept(")") {
			if len(m.Results) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
				// allow trailing comma
				if p.accept(")") {
					break
				}
			}
			if err := p.expect("%"); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			m.Results = append(m.Results, name)
		}
	} else {
		if err := p.expect("%"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		m.Results = append(m.Results, name)
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if len(m.Results) == 0 {
		return nil, p.errf("module has no results")
	}
	return m, nil
}

func (p *parser) param() (Param, error) {
	if err := p.expect("%"); err != nil {
		return Param{}, err
	}
	name, err := p.ident()
	if err != nil {
		return Param{}, err
	}
	if err := p.expect(":"); err != nil {
		return Param{}, err
	}
	if err := p.expect("Tensor"); err != nil {
		return Param{}, err
	}
	if err := p.expect("["); err != nil {
		return Param{}, err
	}
	if err := p.expect("("); err != nil {
		return Param{}, err
	}
	var shape []int
	for !p.accept(")") {
		if len(shape) > 0 {
			if err := p.expect(","); err != nil {
				return Param{}, err
			}
		}
		d, err := p.int()
		if err != nil {
			return Param{}, err
		}
		shape = append(shape, d)
	}
	if err := p.expect("]"); err != nil {
		return Param{}, err
	}
	return Param{Name: name, Shape: shape}, nil
}

func (p *parser) bindingTail(name string) (Binding, error) {
	op, err := p.ident()
	if err != nil {
		return Binding{}, err
	}
	if err := p.expect("("); err != nil {
		return Binding{}, err
	}
	b := Binding{Name: name, Op: op, Attrs: graph.Attrs{}}
	for !p.accept(")") {
		if len(b.Args) > 0 {
			if err := p.expect(","); err != nil {
				return Binding{}, err
			}
		}
		p.skipSpace()
		var arg Arg
		switch p.peek() {
		case '%':
			p.pos++
			arg.Name, err = p.ident()
		case '@':
			p.pos++
			arg.IsConst = true
			arg.Name, err = p.ident()
		default:
			return Binding{}, p.errf("expected %%ref or @const argument")
		}
		if err != nil {
			return Binding{}, err
		}
		b.Args = append(b.Args, arg)
	}
	if p.accept("{") {
		first := true
		for !p.accept("}") {
			if !first {
				if err := p.expect(","); err != nil {
					return Binding{}, err
				}
			}
			first = false
			key, err := p.ident()
			if err != nil {
				return Binding{}, err
			}
			if err := p.expect("="); err != nil {
				return Binding{}, err
			}
			val, err := p.attrValue()
			if err != nil {
				return Binding{}, err
			}
			b.Attrs[key] = val
		}
	}
	if err := p.expect(";"); err != nil {
		return Binding{}, err
	}
	return b, nil
}

func (p *parser) attrValue() (interface{}, error) {
	p.skipSpace()
	switch {
	case p.peek() == '[':
		p.pos++
		var xs []int
		for !p.accept("]") {
			if len(xs) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			v, err := p.int()
			if err != nil {
				return nil, err
			}
			xs = append(xs, v)
		}
		return xs, nil
	case p.peek() == '"':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			p.pos++
		}
		if p.pos == len(p.src) {
			return nil, p.errf("unterminated string")
		}
		s := p.src[start:p.pos]
		p.pos++
		return s, nil
	default:
		return p.int()
	}
}
