package faults

import (
	"math"
	"testing"

	"duet/internal/device"
	"duet/internal/ops"
)

func TestDownWindows(t *testing.T) {
	in := New(1, Outage(device.GPU, 0.010, 0.005))
	cases := []struct {
		t    float64
		down bool
	}{
		{0, false}, {0.009, false}, {0.010, true}, {0.012, true}, {0.015, false}, {1, false},
	}
	for _, c := range cases {
		if down, _ := in.Down(device.GPU, c.t); down != c.down {
			t.Fatalf("Down(GPU, %v) = %v, want %v", c.t, down, c.down)
		}
		if down, _ := in.Down(device.CPU, c.t); down {
			t.Fatalf("CPU should never be down")
		}
	}
	if down, until := New(2, Outage(device.CPU, 1, 0)).Down(device.CPU, 2); !down || !math.IsInf(until, 1) {
		t.Fatalf("permanent outage: down=%v until=%v", down, until)
	}
}

func TestKernelDeterministicUnderSeed(t *testing.T) {
	mk := func() *Injector {
		return New(7, KernelFailures(device.GPU, 0.3), Slowdown(device.CPU, 0.3, 2), TransferFailures(0.2))
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		start := float64(i) * 1e-4
		fa := a.Kernel(device.GPU, start, 1e-3)
		fb := b.Kernel(device.GPU, start, 1e-3)
		if fa != fb {
			t.Fatalf("kernel draw %d diverges: %+v vs %+v", i, fa, fb)
		}
		xa := a.Transfer(device.CPU, device.GPU, start, 1e-4)
		xb := b.Transfer(device.CPU, device.GPU, start, 1e-4)
		if xa != xb {
			t.Fatalf("transfer draw %d diverges: %+v vs %+v", i, xa, xb)
		}
	}
	// Reset rewinds the stream.
	first := mk().Kernel(device.GPU, 0, 1e-3)
	a.Reset()
	if got := a.Kernel(device.GPU, 0, 1e-3); got != first {
		t.Fatalf("Reset did not rewind: %+v vs %+v", got, first)
	}
}

func TestFaultShapes(t *testing.T) {
	// Certain slowdown: delay = dur*(factor-1), no failure.
	f := New(1, Slowdown(device.CPU, 1, 3)).Kernel(device.CPU, 0, 2e-3)
	if f.Fail || math.Abs(f.Delay-4e-3) > 1e-12 {
		t.Fatalf("slowdown fault = %+v", f)
	}
	// Certain stall.
	f = New(1, Stalls(device.GPU, 1, 5e-4)).Kernel(device.GPU, 0, 1e-3)
	if f.Fail || f.Delay != 5e-4 {
		t.Fatalf("stall fault = %+v", f)
	}
	// Certain kernel failure wastes the full duration.
	f = New(1, KernelFailures(device.GPU, 1)).Kernel(device.GPU, 0, 1e-3)
	if !f.Fail || f.Delay != 1e-3 || f.Cause != "kernel" {
		t.Fatalf("kernel failure = %+v", f)
	}
	// Specs targeting the other device never fire.
	f = New(1, KernelFailures(device.GPU, 1)).Kernel(device.CPU, 0, 1e-3)
	if f.Fail || f.Delay != 0 {
		t.Fatalf("mistargeted fault = %+v", f)
	}
	// Outage dominates kernels and transfers on the dead device.
	in := New(1, Outage(device.GPU, 0, 0))
	if f = in.Kernel(device.GPU, 0, 1e-3); !f.Fail || f.Cause != "outage" {
		t.Fatalf("outage kernel = %+v", f)
	}
	if f = in.Transfer(device.CPU, device.GPU, 0, 1e-4); !f.Fail || f.Cause != "outage" {
		t.Fatalf("outage transfer = %+v", f)
	}
	if f = in.Kernel(device.CPU, 0, 1e-3); f.Fail {
		t.Fatalf("surviving device faulted: %+v", f)
	}
}

func TestInstalledHooksPerturbSamples(t *testing.T) {
	plat := device.NewPlatform(0)
	in := New(1, Stalls(device.CPU, 1, 1e-3))
	in.Install(plat)
	c := ops.Cost{FLOPs: 1e6, Bytes: 1e4, Parallelism: 64, Launches: 1}
	healthy := plat.CPU.SampleKernelTime(c)
	dur, f := plat.CPU.SampleKernelTimeAt(c, 0)
	if f.Fail || dur != healthy+1e-3 {
		t.Fatalf("hooked sample = %v (+%v fault %+v), healthy %v", dur, dur-healthy, f, healthy)
	}
	in.Uninstall(plat)
	if dur, f = plat.CPU.SampleKernelTimeAt(c, 0); f.Fail || dur != healthy {
		t.Fatalf("uninstalled sample = %v, want %v", dur, healthy)
	}
	// Failed transfers occupy the link for the wasted duration only.
	in2 := New(1, TransferFailures(1))
	in2.Install(plat)
	dur, f = plat.Link.SampleTransferTimeAt(1<<20, device.CPU, device.GPU, 0)
	if !f.Fail || dur != plat.Link.TransferTime(1<<20) {
		t.Fatalf("failed transfer = %v fault %+v", dur, f)
	}
	// Zero-byte transfers cannot fault.
	if dur, f = plat.Link.SampleTransferTimeAt(0, device.CPU, device.GPU, 0); dur != 0 || f.Fail {
		t.Fatalf("zero-byte transfer = %v fault %+v", dur, f)
	}
	in2.Uninstall(plat)
}

func TestEmptyAndNil(t *testing.T) {
	if !New(1).Empty() {
		t.Fatalf("spec-less injector should be Empty")
	}
	var nilIn *Injector
	if !nilIn.Empty() {
		t.Fatalf("nil injector should be Empty")
	}
	if down, _ := nilIn.Down(device.GPU, 5); down {
		t.Fatalf("nil injector reports outage")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KernelSlowdown: "kernel-slowdown", KernelStall: "kernel-stall",
		KernelFailure: "kernel-failure", TransferFailure: "transfer-failure",
		DeviceOutage: "device-outage",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
}
