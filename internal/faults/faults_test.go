package faults

import (
	"math"
	"testing"

	"duet/internal/device"
	"duet/internal/ops"
)

func TestDownWindows(t *testing.T) {
	in := New(1, Outage(device.GPU, 0.010, 0.005))
	cases := []struct {
		t    float64
		down bool
	}{
		{0, false}, {0.009, false}, {0.010, true}, {0.012, true}, {0.015, false}, {1, false},
	}
	for _, c := range cases {
		if down, _ := in.Down(device.GPU, c.t); down != c.down {
			t.Fatalf("Down(GPU, %v) = %v, want %v", c.t, down, c.down)
		}
		if down, _ := in.Down(device.CPU, c.t); down {
			t.Fatalf("CPU should never be down")
		}
	}
	if down, until := New(2, Outage(device.CPU, 1, 0)).Down(device.CPU, 2); !down || !math.IsInf(until, 1) {
		t.Fatalf("permanent outage: down=%v until=%v", down, until)
	}
}

func TestKernelDeterministicUnderSeed(t *testing.T) {
	mk := func() *Injector {
		return New(7, KernelFailures(device.GPU, 0.3), Slowdown(device.CPU, 0.3, 2), TransferFailures(0.2))
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		start := float64(i) * 1e-4
		fa := a.Kernel(device.GPU, start, 1e-3)
		fb := b.Kernel(device.GPU, start, 1e-3)
		if fa != fb {
			t.Fatalf("kernel draw %d diverges: %+v vs %+v", i, fa, fb)
		}
		xa := a.Transfer(device.CPU, device.GPU, start, 1e-4)
		xb := b.Transfer(device.CPU, device.GPU, start, 1e-4)
		if xa != xb {
			t.Fatalf("transfer draw %d diverges: %+v vs %+v", i, xa, xb)
		}
	}
	// Reset rewinds the stream.
	first := mk().Kernel(device.GPU, 0, 1e-3)
	a.Reset()
	if got := a.Kernel(device.GPU, 0, 1e-3); got != first {
		t.Fatalf("Reset did not rewind: %+v vs %+v", got, first)
	}
}

func TestFaultShapes(t *testing.T) {
	// Certain slowdown: delay = dur*(factor-1), no failure.
	f := New(1, Slowdown(device.CPU, 1, 3)).Kernel(device.CPU, 0, 2e-3)
	if f.Fail || math.Abs(f.Delay-4e-3) > 1e-12 {
		t.Fatalf("slowdown fault = %+v", f)
	}
	// Certain stall.
	f = New(1, Stalls(device.GPU, 1, 5e-4)).Kernel(device.GPU, 0, 1e-3)
	if f.Fail || f.Delay != 5e-4 {
		t.Fatalf("stall fault = %+v", f)
	}
	// Certain kernel failure wastes the full duration.
	f = New(1, KernelFailures(device.GPU, 1)).Kernel(device.GPU, 0, 1e-3)
	if !f.Fail || f.Delay != 1e-3 || f.Cause != "kernel" {
		t.Fatalf("kernel failure = %+v", f)
	}
	// Specs targeting the other device never fire.
	f = New(1, KernelFailures(device.GPU, 1)).Kernel(device.CPU, 0, 1e-3)
	if f.Fail || f.Delay != 0 {
		t.Fatalf("mistargeted fault = %+v", f)
	}
	// Outage dominates kernels and transfers on the dead device.
	in := New(1, Outage(device.GPU, 0, 0))
	if f = in.Kernel(device.GPU, 0, 1e-3); !f.Fail || f.Cause != "outage" {
		t.Fatalf("outage kernel = %+v", f)
	}
	if f = in.Transfer(device.CPU, device.GPU, 0, 1e-4); !f.Fail || f.Cause != "outage" {
		t.Fatalf("outage transfer = %+v", f)
	}
	if f = in.Kernel(device.CPU, 0, 1e-3); f.Fail {
		t.Fatalf("surviving device faulted: %+v", f)
	}
}

func TestInstalledHooksPerturbSamples(t *testing.T) {
	plat := device.NewPlatform(0)
	in := New(1, Stalls(device.CPU, 1, 1e-3))
	in.Install(plat)
	c := ops.Cost{FLOPs: 1e6, Bytes: 1e4, Parallelism: 64, Launches: 1}
	healthy := plat.CPU.SampleKernelTime(c)
	dur, f := plat.CPU.SampleKernelTimeAt(c, 0)
	if f.Fail || dur != healthy+1e-3 {
		t.Fatalf("hooked sample = %v (+%v fault %+v), healthy %v", dur, dur-healthy, f, healthy)
	}
	in.Uninstall(plat)
	if dur, f = plat.CPU.SampleKernelTimeAt(c, 0); f.Fail || dur != healthy {
		t.Fatalf("uninstalled sample = %v, want %v", dur, healthy)
	}
	// Failed transfers occupy the link for the wasted duration only.
	in2 := New(1, TransferFailures(1))
	in2.Install(plat)
	dur, f = plat.Link.SampleTransferTimeAt(1<<20, device.CPU, device.GPU, 0)
	if !f.Fail || dur != plat.Link.TransferTime(1<<20) {
		t.Fatalf("failed transfer = %v fault %+v", dur, f)
	}
	// Zero-byte transfers cannot fault.
	if dur, f = plat.Link.SampleTransferTimeAt(0, device.CPU, device.GPU, 0); dur != 0 || f.Fail {
		t.Fatalf("zero-byte transfer = %v fault %+v", dur, f)
	}
	in2.Uninstall(plat)
}

func TestEmptyAndNil(t *testing.T) {
	if !New(1).Empty() {
		t.Fatalf("spec-less injector should be Empty")
	}
	var nilIn *Injector
	if !nilIn.Empty() {
		t.Fatalf("nil injector should be Empty")
	}
	if down, _ := nilIn.Down(device.GPU, 5); down {
		t.Fatalf("nil injector reports outage")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KernelSlowdown: "kernel-slowdown", KernelStall: "kernel-stall",
		KernelFailure: "kernel-failure", TransferFailure: "transfer-failure",
		DeviceOutage: "device-outage", NodeCrash: "node-crash",
		LinkPartition: "link-partition", MessageLoss: "message-loss",
		MessageDelay: "message-delay",
	} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
}

// TestPermanentOutageNeverRecovers is the regression test for the
// Duration ≤ 0 path: the device must stay down (and keep failing kernels
// and transfers) arbitrarily far past the outage start, with recovery
// reported at +Inf.
func TestPermanentOutageNeverRecovers(t *testing.T) {
	in := New(3, Outage(device.GPU, 0.002, 0))
	if down, _ := in.Down(device.GPU, 0.001); down {
		t.Fatalf("down before the outage start")
	}
	for _, at := range []float64{0.002, 0.01, 1, 1e6} {
		down, until := in.Down(device.GPU, at)
		if !down || !math.IsInf(until, 1) {
			t.Fatalf("Down(GPU, %v) = %v until %v, want permanent", at, down, until)
		}
		if f := in.Kernel(device.GPU, at, 1e-3); !f.Fail || f.Cause != "outage" || f.Delay != DetectDelay {
			t.Fatalf("kernel at %v under permanent outage = %+v", at, f)
		}
		if f := in.Transfer(device.GPU, device.CPU, at, 1e-4); !f.Fail || f.Cause != "outage" {
			t.Fatalf("transfer at %v under permanent outage = %+v", at, f)
		}
	}
	// Negative durations are the same permanent path as zero.
	if down, until := New(3, Outage(device.CPU, 1, -5)).Down(device.CPU, 2); !down || !math.IsInf(until, 1) {
		t.Fatalf("negative duration: down=%v until=%v", down, until)
	}
}

func TestNodeCrashWindows(t *testing.T) {
	in := New(1, Crash(2, 0.010, 0.005), Crash(4, 0.001, 0))
	cases := []struct {
		t    float64
		down bool
	}{
		{0, false}, {0.009, false}, {0.010, true}, {0.014, true}, {0.015, false}, {1, false},
	}
	for _, c := range cases {
		if down, _ := in.NodeDown(2, c.t); down != c.down {
			t.Fatalf("NodeDown(2, %v) = %v, want %v", c.t, down, c.down)
		}
		if down, _ := in.NodeDown(0, c.t); down {
			t.Fatalf("untargeted node down at %v", c.t)
		}
	}
	if down, until := in.NodeDown(2, 0.012); !down || until != 0.015 {
		t.Fatalf("restart time = %v (down=%v), want 0.015", until, down)
	}
	if down, until := in.NodeDown(4, 5); !down || !math.IsInf(until, 1) {
		t.Fatalf("permanent crash: down=%v until=%v", down, until)
	}
	// Restart detection: node 2 restarts at 0.015, inside (0.010, 0.020].
	if !in.NodeRestarted(2, 0.010, 0.020) {
		t.Fatalf("restart at 0.015 not detected in (0.010, 0.020]")
	}
	if in.NodeRestarted(2, 0.015, 0.020) {
		t.Fatalf("restart at 0.015 detected twice (since boundary is exclusive)")
	}
	if in.NodeRestarted(4, 0, 100) {
		t.Fatalf("permanent crash reported a restart")
	}
}

func TestPartitionAndMessage(t *testing.T) {
	in := New(1, Partition(1, 0.005, 0.010))
	if cut, _ := in.Partitioned(1, 0.004); cut {
		t.Fatalf("partitioned before the window")
	}
	if cut, until := in.Partitioned(1, 0.006); !cut || until != 0.015 {
		t.Fatalf("partition window: cut=%v until=%v", cut, until)
	}
	// Messages across a cut link drop without consuming an RNG draw.
	if drop, _ := in.Message(1, 0.006); !drop {
		t.Fatalf("message crossed a partitioned link")
	}
	if drop, extra := in.Message(0, 0.006); drop || extra != 0 {
		t.Fatalf("untargeted link dropped or delayed: %v %v", drop, extra)
	}

	// Certain loss and delay; node targeting.
	in = New(1, MessageLosses(2, 1), MessageDelays(-1, 1, 3e-4))
	if drop, extra := in.Message(2, 0); !drop || extra != 3e-4 {
		t.Fatalf("message to node 2: drop=%v extra=%v", drop, extra)
	}
	if drop, extra := in.Message(0, 0); drop || extra != 3e-4 {
		t.Fatalf("message to node 0: drop=%v extra=%v", drop, extra)
	}
}

// TestMessageDeterministicUnderSeed pins the network-fault draw stream: the
// same seed and call sequence reproduce drops and delays exactly, and Reset
// rewinds the stream.
func TestMessageDeterministicUnderSeed(t *testing.T) {
	mk := func() *Injector { return New(11, MessageLosses(-1, 0.3), MessageDelays(-1, 0.4, 2e-4)) }
	a, b := mk(), mk()
	type fate struct {
		drop  bool
		extra float64
	}
	var first fate
	for i := 0; i < 500; i++ {
		da, xa := a.Message(i%3, float64(i)*1e-4)
		db, xb := b.Message(i%3, float64(i)*1e-4)
		if da != db || xa != xb {
			t.Fatalf("message draw %d diverges: (%v,%v) vs (%v,%v)", i, da, xa, db, xb)
		}
		if i == 0 {
			first = fate{da, xa}
		}
	}
	a.Reset()
	if d, x := a.Message(0, 0); d != first.drop || x != first.extra {
		t.Fatalf("Reset did not rewind the message stream")
	}
}
