// Package faults provides deterministic, seedable fault injection for the
// execution engine and the cluster fabric. An Injector implements the
// device-layer fault hooks (device.KernelHook / device.TransferHook) and
// perturbs sampled durations on the virtual clock: kernels slow down, stall,
// or fail transiently; transfers fail; a whole device can go offline at a
// virtual time and optionally recover. The network-class kinds model whole
// serving nodes and their links: a node crashes and restarts (NodeCrash),
// the router↔node link partitions (LinkPartition), and in-flight messages
// are dropped or delayed (MessageLoss / MessageDelay). Probabilistic kinds
// draw from a seeded RNG — one draw per matching spec per sample, so the
// same seed and the same call sequence reproduce the same fault schedule
// exactly. Time-based kinds (DeviceOutage, NodeCrash, LinkPartition) are
// pure functions of the virtual clock.
//
// Injectors are not safe for concurrent use; the engine's timing pass and
// the cluster's event loop are serial, which is also what keeps the draw
// order deterministic.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"duet/internal/device"
	"duet/internal/vclock"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KernelSlowdown multiplies a kernel's duration by Factor — modelling
	// multi-tenant interference or thermal throttling.
	KernelSlowdown Kind = iota
	// KernelStall adds a fixed Stall to a kernel's duration — a scheduler
	// hiccup or page fault.
	KernelStall
	// KernelFailure aborts a kernel after its full duration was spent — the
	// work is lost and the subgraph attempt fails.
	KernelFailure
	// TransferFailure aborts a link transfer after its full duration — a
	// dropped or corrupted DMA that must be re-issued.
	TransferFailure
	// DeviceOutage takes a whole device offline at virtual time At for
	// Duration (≤0 = permanent): kernels on it and transfers touching it
	// fail until recovery.
	DeviceOutage
	// NodeCrash takes a whole serving node offline at virtual time At for
	// Duration (≤0 = permanent). A crashed node loses its in-flight work:
	// requests delivered to it vanish, responses computed before the crash
	// are never sent, and a restart resets the node's service slots.
	NodeCrash
	// LinkPartition cuts the router↔node link at virtual time At for
	// Duration (≤0 = permanent). Unlike a crash the node keeps computing —
	// only messages crossing the link are dropped, so the node's state
	// survives the partition healing.
	LinkPartition
	// MessageLoss drops a router↔node message with probability Prob. Node
	// targets one node (negative = every node).
	MessageLoss
	// MessageDelay adds Stall to a router↔node message's network latency
	// with probability Prob. Node targets one node (negative = every node).
	MessageDelay
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KernelSlowdown:
		return "kernel-slowdown"
	case KernelStall:
		return "kernel-stall"
	case KernelFailure:
		return "kernel-failure"
	case TransferFailure:
		return "transfer-failure"
	case DeviceOutage:
		return "device-outage"
	case NodeCrash:
		return "node-crash"
	case LinkPartition:
		return "link-partition"
	case MessageLoss:
		return "message-loss"
	case MessageDelay:
		return "message-delay"
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// DetectDelay is the virtual time a worker needs to notice that its device
// is unreachable (a poll timeout), charged per failed attempt on a device
// that is down.
const DetectDelay vclock.Seconds = 5e-6

// Spec configures one fault source inside an Injector.
type Spec struct {
	Kind Kind
	// Device targets kernel kinds and DeviceOutage (ignored for
	// TransferFailure, which lives on the link).
	Device device.Kind
	// Prob is the per-sample probability for the probabilistic kinds.
	Prob float64
	// Factor is the KernelSlowdown duration multiplier (e.g. 3 = 3× slower).
	Factor float64
	// Stall is the KernelStall added duration.
	Stall vclock.Seconds
	// At is the start of the time-based kinds (DeviceOutage, NodeCrash,
	// LinkPartition) on the run's virtual clock.
	At vclock.Seconds
	// Duration is the time-based kinds' length; ≤0 means the device/node/link
	// never recovers.
	Duration vclock.Seconds
	// Node targets the network kinds (NodeCrash, LinkPartition, and —
	// negative meaning "every node" — MessageLoss/MessageDelay).
	Node int
}

// Slowdown returns a spec multiplying kernel durations on dev by factor with
// the given per-kernel probability.
func Slowdown(dev device.Kind, prob, factor float64) Spec {
	return Spec{Kind: KernelSlowdown, Device: dev, Prob: prob, Factor: factor}
}

// Stalls returns a spec adding stall to kernels on dev with the given
// per-kernel probability.
func Stalls(dev device.Kind, prob float64, stall vclock.Seconds) Spec {
	return Spec{Kind: KernelStall, Device: dev, Prob: prob, Stall: stall}
}

// KernelFailures returns a spec failing kernels on dev with the given
// per-kernel probability.
func KernelFailures(dev device.Kind, prob float64) Spec {
	return Spec{Kind: KernelFailure, Device: dev, Prob: prob}
}

// TransferFailures returns a spec failing link transfers with the given
// per-transfer probability.
func TransferFailures(prob float64) Spec {
	return Spec{Kind: TransferFailure, Prob: prob}
}

// Outage returns a spec taking dev offline at virtual time at for duration
// (≤0 = permanently).
func Outage(dev device.Kind, at, duration vclock.Seconds) Spec {
	return Spec{Kind: DeviceOutage, Device: dev, At: at, Duration: duration}
}

// Crash returns a spec crashing serving node at virtual time at for duration
// (≤0 = permanently; otherwise the node restarts with fresh service slots).
func Crash(node int, at, duration vclock.Seconds) Spec {
	return Spec{Kind: NodeCrash, Node: node, At: at, Duration: duration}
}

// Partition returns a spec cutting the router↔node link at virtual time at
// for duration (≤0 = permanently).
func Partition(node int, at, duration vclock.Seconds) Spec {
	return Spec{Kind: LinkPartition, Node: node, At: at, Duration: duration}
}

// MessageLosses returns a spec dropping router↔node messages with the given
// per-message probability. node < 0 targets every node.
func MessageLosses(node int, prob float64) Spec {
	return Spec{Kind: MessageLoss, Node: node, Prob: prob}
}

// MessageDelays returns a spec adding extra to a router↔node message's
// latency with the given per-message probability. node < 0 targets every
// node.
func MessageDelays(node int, prob float64, extra vclock.Seconds) Spec {
	return Spec{Kind: MessageDelay, Node: node, Prob: prob, Stall: extra}
}

// Injector is a deterministic fault source. The zero value injects nothing;
// construct with New.
type Injector struct {
	seed  int64
	rng   *rand.Rand
	specs []Spec
}

// New returns an injector drawing from the given seed. With no specs it is
// a no-op (Empty reports true).
func New(seed int64, specs ...Spec) *Injector {
	in := &Injector{seed: seed, specs: specs}
	in.Reset()
	return in
}

// Reset rewinds the RNG to the seed so the next run reproduces the first
// run's fault schedule exactly.
func (in *Injector) Reset() { in.rng = rand.New(rand.NewSource(in.seed)) }

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 { return in.seed }

// Specs returns the configured fault sources.
func (in *Injector) Specs() []Spec { return in.specs }

// Empty reports whether the injector has no fault sources.
func (in *Injector) Empty() bool { return in == nil || len(in.specs) == 0 }

// Down reports whether dev is inside an outage window at virtual time t,
// and when it recovers (math.Inf(1) for a permanent outage).
func (in *Injector) Down(dev device.Kind, t vclock.Seconds) (bool, vclock.Seconds) {
	if in == nil {
		return false, 0
	}
	for _, s := range in.specs {
		if s.Kind != DeviceOutage || s.Device != dev || t < s.At {
			continue
		}
		if s.Duration <= 0 {
			return true, math.Inf(1)
		}
		if t < s.At+s.Duration {
			return true, s.At + s.Duration
		}
	}
	return false, 0
}

// window reports whether t falls inside a time-based spec's [At, At+Duration)
// window, and when the window ends (math.Inf(1) for Duration ≤ 0).
func (s *Spec) window(t vclock.Seconds) (bool, vclock.Seconds) {
	if t < s.At {
		return false, 0
	}
	if s.Duration <= 0 {
		return true, math.Inf(1)
	}
	if t < s.At+s.Duration {
		return true, s.At + s.Duration
	}
	return false, 0
}

// NodeDown reports whether serving node is inside a NodeCrash window at
// virtual time t, and when it restarts (math.Inf(1) for a permanent crash).
func (in *Injector) NodeDown(node int, t vclock.Seconds) (bool, vclock.Seconds) {
	if in == nil {
		return false, 0
	}
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind != NodeCrash || s.Node != node {
			continue
		}
		if down, until := s.window(t); down {
			return true, until
		}
	}
	return false, 0
}

// Partitioned reports whether the router↔node link is cut at virtual time t,
// and when it heals (math.Inf(1) for a permanent partition).
func (in *Injector) Partitioned(node int, t vclock.Seconds) (bool, vclock.Seconds) {
	if in == nil {
		return false, 0
	}
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind != LinkPartition || s.Node != node {
			continue
		}
		if cut, until := s.window(t); cut {
			return true, until
		}
	}
	return false, 0
}

// NodeRestarted reports whether node recovered from a crash in the window
// (since, now] — the cluster uses it to reset a node's service slots on the
// first delivery after a restart. Permanent crashes never restart.
func (in *Injector) NodeRestarted(node int, since, now vclock.Seconds) bool {
	if in == nil {
		return false
	}
	for i := range in.specs {
		s := &in.specs[i]
		if s.Kind != NodeCrash || s.Node != node || s.Duration <= 0 {
			continue
		}
		if end := s.At + s.Duration; end > since && end <= now {
			return true
		}
	}
	return false
}

// Message decides the fate of one router↔node message sent at virtual time
// t: dropped on a partitioned link (no RNG draw — partitions are pure
// functions of the clock), otherwise each matching MessageLoss/MessageDelay
// spec consumes exactly one RNG draw whether or not it fires, keeping the
// stream aligned across runs. Returns whether the message is lost and the
// extra latency it accumulated.
func (in *Injector) Message(node int, t vclock.Seconds) (drop bool, extra vclock.Seconds) {
	if in == nil {
		return false, 0
	}
	if cut, _ := in.Partitioned(node, t); cut {
		return true, 0
	}
	for i := range in.specs {
		s := &in.specs[i]
		if s.Node >= 0 && s.Node != node {
			continue
		}
		switch s.Kind {
		case MessageLoss:
			if in.rng.Float64() < s.Prob {
				drop = true
			}
		case MessageDelay:
			if in.rng.Float64() < s.Prob {
				extra += s.Stall
			}
		}
	}
	return drop, extra
}

// Kernel implements device.KernelHook: it is consulted once per sampled
// kernel and decides the injected delay or failure. Each probabilistic spec
// matching the device consumes exactly one RNG draw whether or not it fires,
// keeping the stream aligned across runs.
func (in *Injector) Kernel(kind device.Kind, start, dur vclock.Seconds) device.Fault {
	if down, _ := in.Down(kind, start); down {
		return device.Fault{Delay: DetectDelay, Fail: true, Cause: "outage"}
	}
	var f device.Fault
	for _, s := range in.specs {
		switch s.Kind {
		case KernelSlowdown:
			if s.Device == kind && in.rng.Float64() < s.Prob {
				f.Delay += dur * (s.Factor - 1)
				f.Cause = "slowdown"
			}
		case KernelStall:
			if s.Device == kind && in.rng.Float64() < s.Prob {
				f.Delay += s.Stall
				f.Cause = "stall"
			}
		case KernelFailure:
			if s.Device == kind && in.rng.Float64() < s.Prob && !f.Fail {
				// The kernel runs to completion before the bad result is
				// detected: the whole duration (plus any stall) is wasted.
				f.Delay += dur
				f.Fail = true
				f.Cause = "kernel"
			}
		}
	}
	return f
}

// Transfer implements device.TransferHook: transfers touching a device that
// is down fail immediately; otherwise TransferFailure specs may fail the
// transfer after its full duration.
func (in *Injector) Transfer(src, dst device.Kind, start, dur vclock.Seconds) device.Fault {
	for _, k := range [2]device.Kind{src, dst} {
		if down, _ := in.Down(k, start); down {
			return device.Fault{Delay: DetectDelay, Fail: true, Cause: "outage"}
		}
	}
	var f device.Fault
	for _, s := range in.specs {
		if s.Kind != TransferFailure {
			continue
		}
		if in.rng.Float64() < s.Prob && !f.Fail {
			f.Delay += dur
			f.Fail = true
			f.Cause = "transfer"
		}
	}
	return f
}

// Install hooks the injector into both devices and the link of a platform.
func (in *Injector) Install(p *device.Platform) {
	p.CPU.SetKernelHook(in.Kernel)
	p.GPU.SetKernelHook(in.Kernel)
	p.Link.SetTransferHook(in.Transfer)
}

// Uninstall removes the platform's fault hooks.
func (in *Injector) Uninstall(p *device.Platform) {
	p.CPU.SetKernelHook(nil)
	p.GPU.SetKernelHook(nil)
	p.Link.SetTransferHook(nil)
}
