// Package faults provides deterministic, seedable fault injection for the
// execution engine. An Injector implements the device-layer fault hooks
// (device.KernelHook / device.TransferHook) and perturbs sampled durations
// on the virtual clock: kernels slow down, stall, or fail transiently;
// transfers fail; a whole device can go offline at a virtual time and
// optionally recover. Probabilistic kinds draw from a seeded RNG — one draw
// per matching spec per sample, so the same seed and the same call sequence
// reproduce the same fault schedule exactly. Time-based kinds (DeviceOutage)
// are pure functions of the virtual clock.
//
// Injectors are not safe for concurrent use; the engine's timing pass is
// serial, which is also what keeps the draw order deterministic.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"duet/internal/device"
	"duet/internal/vclock"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KernelSlowdown multiplies a kernel's duration by Factor — modelling
	// multi-tenant interference or thermal throttling.
	KernelSlowdown Kind = iota
	// KernelStall adds a fixed Stall to a kernel's duration — a scheduler
	// hiccup or page fault.
	KernelStall
	// KernelFailure aborts a kernel after its full duration was spent — the
	// work is lost and the subgraph attempt fails.
	KernelFailure
	// TransferFailure aborts a link transfer after its full duration — a
	// dropped or corrupted DMA that must be re-issued.
	TransferFailure
	// DeviceOutage takes a whole device offline at virtual time At for
	// Duration (≤0 = permanent): kernels on it and transfers touching it
	// fail until recovery.
	DeviceOutage
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case KernelSlowdown:
		return "kernel-slowdown"
	case KernelStall:
		return "kernel-stall"
	case KernelFailure:
		return "kernel-failure"
	case TransferFailure:
		return "transfer-failure"
	case DeviceOutage:
		return "device-outage"
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// DetectDelay is the virtual time a worker needs to notice that its device
// is unreachable (a poll timeout), charged per failed attempt on a device
// that is down.
const DetectDelay vclock.Seconds = 5e-6

// Spec configures one fault source inside an Injector.
type Spec struct {
	Kind Kind
	// Device targets kernel kinds and DeviceOutage (ignored for
	// TransferFailure, which lives on the link).
	Device device.Kind
	// Prob is the per-sample probability for the probabilistic kinds.
	Prob float64
	// Factor is the KernelSlowdown duration multiplier (e.g. 3 = 3× slower).
	Factor float64
	// Stall is the KernelStall added duration.
	Stall vclock.Seconds
	// At is the DeviceOutage start on the run's virtual clock.
	At vclock.Seconds
	// Duration is the DeviceOutage length; ≤0 means the device never
	// recovers.
	Duration vclock.Seconds
}

// Slowdown returns a spec multiplying kernel durations on dev by factor with
// the given per-kernel probability.
func Slowdown(dev device.Kind, prob, factor float64) Spec {
	return Spec{Kind: KernelSlowdown, Device: dev, Prob: prob, Factor: factor}
}

// Stalls returns a spec adding stall to kernels on dev with the given
// per-kernel probability.
func Stalls(dev device.Kind, prob float64, stall vclock.Seconds) Spec {
	return Spec{Kind: KernelStall, Device: dev, Prob: prob, Stall: stall}
}

// KernelFailures returns a spec failing kernels on dev with the given
// per-kernel probability.
func KernelFailures(dev device.Kind, prob float64) Spec {
	return Spec{Kind: KernelFailure, Device: dev, Prob: prob}
}

// TransferFailures returns a spec failing link transfers with the given
// per-transfer probability.
func TransferFailures(prob float64) Spec {
	return Spec{Kind: TransferFailure, Prob: prob}
}

// Outage returns a spec taking dev offline at virtual time at for duration
// (≤0 = permanently).
func Outage(dev device.Kind, at, duration vclock.Seconds) Spec {
	return Spec{Kind: DeviceOutage, Device: dev, At: at, Duration: duration}
}

// Injector is a deterministic fault source. The zero value injects nothing;
// construct with New.
type Injector struct {
	seed  int64
	rng   *rand.Rand
	specs []Spec
}

// New returns an injector drawing from the given seed. With no specs it is
// a no-op (Empty reports true).
func New(seed int64, specs ...Spec) *Injector {
	in := &Injector{seed: seed, specs: specs}
	in.Reset()
	return in
}

// Reset rewinds the RNG to the seed so the next run reproduces the first
// run's fault schedule exactly.
func (in *Injector) Reset() { in.rng = rand.New(rand.NewSource(in.seed)) }

// Seed returns the injector's seed.
func (in *Injector) Seed() int64 { return in.seed }

// Specs returns the configured fault sources.
func (in *Injector) Specs() []Spec { return in.specs }

// Empty reports whether the injector has no fault sources.
func (in *Injector) Empty() bool { return in == nil || len(in.specs) == 0 }

// Down reports whether dev is inside an outage window at virtual time t,
// and when it recovers (math.Inf(1) for a permanent outage).
func (in *Injector) Down(dev device.Kind, t vclock.Seconds) (bool, vclock.Seconds) {
	if in == nil {
		return false, 0
	}
	for _, s := range in.specs {
		if s.Kind != DeviceOutage || s.Device != dev || t < s.At {
			continue
		}
		if s.Duration <= 0 {
			return true, math.Inf(1)
		}
		if t < s.At+s.Duration {
			return true, s.At + s.Duration
		}
	}
	return false, 0
}

// Kernel implements device.KernelHook: it is consulted once per sampled
// kernel and decides the injected delay or failure. Each probabilistic spec
// matching the device consumes exactly one RNG draw whether or not it fires,
// keeping the stream aligned across runs.
func (in *Injector) Kernel(kind device.Kind, start, dur vclock.Seconds) device.Fault {
	if down, _ := in.Down(kind, start); down {
		return device.Fault{Delay: DetectDelay, Fail: true, Cause: "outage"}
	}
	var f device.Fault
	for _, s := range in.specs {
		switch s.Kind {
		case KernelSlowdown:
			if s.Device == kind && in.rng.Float64() < s.Prob {
				f.Delay += dur * (s.Factor - 1)
				f.Cause = "slowdown"
			}
		case KernelStall:
			if s.Device == kind && in.rng.Float64() < s.Prob {
				f.Delay += s.Stall
				f.Cause = "stall"
			}
		case KernelFailure:
			if s.Device == kind && in.rng.Float64() < s.Prob && !f.Fail {
				// The kernel runs to completion before the bad result is
				// detected: the whole duration (plus any stall) is wasted.
				f.Delay += dur
				f.Fail = true
				f.Cause = "kernel"
			}
		}
	}
	return f
}

// Transfer implements device.TransferHook: transfers touching a device that
// is down fail immediately; otherwise TransferFailure specs may fail the
// transfer after its full duration.
func (in *Injector) Transfer(src, dst device.Kind, start, dur vclock.Seconds) device.Fault {
	for _, k := range [2]device.Kind{src, dst} {
		if down, _ := in.Down(k, start); down {
			return device.Fault{Delay: DetectDelay, Fail: true, Cause: "outage"}
		}
	}
	var f device.Fault
	for _, s := range in.specs {
		if s.Kind != TransferFailure {
			continue
		}
		if in.rng.Float64() < s.Prob && !f.Fail {
			f.Delay += dur
			f.Fail = true
			f.Cause = "transfer"
		}
	}
	return f
}

// Install hooks the injector into both devices and the link of a platform.
func (in *Injector) Install(p *device.Platform) {
	p.CPU.SetKernelHook(in.Kernel)
	p.GPU.SetKernelHook(in.Kernel)
	p.Link.SetTransferHook(in.Transfer)
}

// Uninstall removes the platform's fault hooks.
func (in *Injector) Uninstall(p *device.Platform) {
	p.CPU.SetKernelHook(nil)
	p.GPU.SetKernelHook(nil)
	p.Link.SetTransferHook(nil)
}
