package duet_test

import (
	"fmt"
	"log"

	"duet"
)

// Example builds a minimal model, schedules it with DUET, and runs one
// inference. The seed-0 engine is fully deterministic, so the output is
// stable.
func Example() {
	g := duet.NewGraph("doc-example")
	x := g.AddInput("x", 1, 4)
	w := g.AddConst("w", duet.TensorFromSlice([]float32{
		1, 0, 0, 0,
		0, 1, 0, 0,
	}, 2, 4))
	d := g.Add("dense", "d", nil, x, w)
	s := g.Add("softmax", "s", nil, d)
	g.SetOutputs(s)

	engine, err := duet.Build(g, duet.DefaultConfig(0))
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Infer(map[string]*duet.Tensor{
		"x": duet.TensorFromSlice([]float32{3, 1, 0, 0}, 1, 4),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement %s, argmax %d\n", engine.Placement, res.Outputs[0].ArgMax())
	// Output: placement C, argmax 0
}

// ExampleParseRelay lowers a textual Relay-like program to a graph and
// executes it through a DUET engine.
func ExampleParseRelay() {
	src := `
fn (%x: Tensor[(1, 3)]) {
  %half = mul(%x, @w_half);
  %out  = relu(%half);
  %out
}`
	weights := map[string]*duet.Tensor{
		"w_half": duet.TensorFull(0.5, 3),
	}
	g, err := duet.ParseRelay(src, "relay-example", weights)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := duet.Build(g, duet.DefaultConfig(0))
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Infer(map[string]*duet.Tensor{
		"x": duet.TensorFromSlice([]float32{2, -4, 6}, 1, 3),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Outputs[0].Data())
	// Output: [1 0 3]
}

// ExampleEngine_PlacementTable shows the Table II-style placement report of
// a heterogeneous model.
func ExampleEngine_PlacementTable() {
	cfg := duet.DefaultWideDeep()
	g, err := duet.WideDeep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ecfg := duet.DefaultConfig(0)
	ecfg.ProfileRuns = 1
	engine, err := duet.Build(g, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	rows := engine.PlacementTable()
	fmt.Printf("%d subgraphs; RNN on %s, CNN on %s\n",
		len(rows), rows[2].Decision, rows[3].Decision)
	// Output: 5 subgraphs; RNN on CPU, CNN on GPU
}
