package duet_test

import (
	"strings"
	"testing"

	"duet"
)

// TestPublicAPIQuickstart exercises the full public surface: graph
// construction, Relay parsing, engine build, inference, measurement.
func TestPublicAPIQuickstart(t *testing.T) {
	g := duet.NewGraph("api-test")
	x := g.AddInput("x", 1, 16)
	w := g.AddConst("w", duet.TensorFull(0.1, 8, 16))
	d := g.Add("dense", "d", nil, x, w)
	s := g.Add("softmax", "s", nil, d)
	g.SetOutputs(s)

	engine, err := duet.Build(g, duet.DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Infer(map[string]*duet.Tensor{"x": duet.TensorFull(1, 1, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || res.Latency <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	var sum float64
	for _, v := range res.Outputs[0].Data() {
		sum += float64(v)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax sum = %v", sum)
	}
}

func TestPublicRelayRoundTrip(t *testing.T) {
	src := `fn (%x: Tensor[(1, 4)]) { %r = relu(%x); %r }`
	g, err := duet.ParseRelay(src, "roundtrip", nil)
	if err != nil {
		t.Fatal(err)
	}
	text, weights, err := duet.FormatRelay(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 0 {
		t.Fatalf("unexpected weights: %v", weights)
	}
	if !strings.Contains(text, "relu(%x)") {
		t.Fatalf("round trip lost the program: %s", text)
	}
	if _, err := duet.ParseRelay(text, "again", nil); err != nil {
		t.Fatalf("printed form does not reparse: %v", err)
	}
}

func TestPublicZooBuilders(t *testing.T) {
	for name, build := range map[string]func() (*duet.Graph, error){
		"widedeep": func() (*duet.Graph, error) { return duet.WideDeep(duet.DefaultWideDeep()) },
		"siamese":  func() (*duet.Graph, error) { return duet.Siamese(duet.DefaultSiamese()) },
		"mtdnn":    func() (*duet.Graph, error) { return duet.MTDNN(duet.DefaultMTDNN()) },
		"resnet":   func() (*duet.Graph, error) { return duet.ResNet(duet.DefaultResNet(18)) },
	} {
		g, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if duet.ParamCount(g) <= 0 {
			t.Fatalf("%s: no parameters", name)
		}
	}
}

func TestPublicWorkloadGenerators(t *testing.T) {
	cfg := duet.DefaultWideDeep()
	inputs := duet.WideDeepInputs(cfg, 3)
	if len(inputs) != 4 {
		t.Fatalf("Wide&Deep inputs = %d entries", len(inputs))
	}
	if len(duet.SiameseInputs(duet.DefaultSiamese(), 3)) != 2 {
		t.Fatalf("Siamese inputs wrong")
	}
	if len(duet.MTDNNInputs(duet.DefaultMTDNN(), 3)) != 1 {
		t.Fatalf("MTDNN inputs wrong")
	}
	if len(duet.ResNetInputs(duet.DefaultResNet(18), 3)) != 1 {
		t.Fatalf("ResNet inputs wrong")
	}
}

func TestPublicEndToEndWideDeep(t *testing.T) {
	cfg := duet.DefaultWideDeep()
	cfg.ImageSize = 32
	cfg.SeqLen = 8
	cfg.FFNWidth = 64
	g, err := duet.WideDeep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := duet.DefaultConfig(1)
	ecfg.ProfileRuns = 2
	engine, err := duet.Build(g, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Infer(duet.WideDeepInputs(cfg, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0].ArgMax() < 0 || res.Outputs[0].ArgMax() >= cfg.Classes {
		t.Fatalf("implausible prediction")
	}
	samples, err := engine.Measure(25)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 25 {
		t.Fatalf("sample count = %d", len(samples))
	}
	gpu, err := engine.MeasureUniform(duet.GPU, 5)
	if err != nil || len(gpu) != 5 {
		t.Fatalf("MeasureUniform failed: %v", err)
	}
}

func TestPublicInferParallelMatchesInfer(t *testing.T) {
	cfg := duet.DefaultSiamese()
	cfg.SeqLen = 8
	cfg.Hidden = 16
	cfg.EmbedDim = 8
	cfg.Vocab = 40
	g, err := duet.Siamese(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := duet.DefaultConfig(0)
	ecfg.ProfileRuns = 1
	engine, err := duet.Build(g, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	inputs := duet.SiameseInputs(cfg, 77)
	serial, err := engine.Infer(inputs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := engine.InferParallel(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Outputs[0].At(0, 0) != parallel.Outputs[0].At(0, 0) {
		t.Fatalf("parallel inference diverges: %v vs %v",
			parallel.Outputs[0].At(0, 0), serial.Outputs[0].At(0, 0))
	}
	if parallel.Latency != serial.Latency {
		// Both use the noiseless timing model; must agree exactly.
		t.Fatalf("latency models diverge: %v vs %v", parallel.Latency, serial.Latency)
	}
}
