// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each BenchmarkXXX corresponds to one artifact (see DESIGN.md §5); the op
// being measured is one end-to-end virtual-clock inference (or one schedule
// search / profile pass), and the custom metric virt-ms/op reports the
// modelled latency the paper's plots show. `go run ./cmd/duet-bench`
// renders the full tables.
package duet_test

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"duet"
	"duet/internal/core"
	"duet/internal/device"
	"duet/internal/experiments"
	"duet/internal/graph"
	"duet/internal/profile"
	"duet/internal/runtime"
	"duet/internal/vclock"
)

// buildEngine constructs a DUET engine with reduced profiling for bench
// setup speed (timing results are unaffected: profiling is offline).
func buildEngine(b *testing.B, g *graph.Graph, err error) *core.Engine {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(42)
	cfg.ProfileRuns = 10
	e, err := core.Build(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// measureLoop runs b.N timing-only inferences under place and reports the
// mean virtual latency.
func measureLoop(b *testing.B, e *core.Engine, place runtime.Placement) {
	b.Helper()
	b.ResetTimer()
	var total vclock.Seconds
	for i := 0; i < b.N; i++ {
		res, err := e.Runtime.Run(nil, place, false)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Latency
	}
	b.ReportMetric(total/float64(b.N)*1e3, "virt-ms/op")
}

// uniformOf returns a uniform placement sized for the engine.
func uniformOf(e *core.Engine, k device.Kind) runtime.Placement {
	return runtime.Uniform(e.Runtime.NumSubgraphs(), k)
}

// BenchmarkFig04Timeline regenerates Fig. 4: one Wide&Deep execution
// producing the full per-device timeline.
func BenchmarkFig04Timeline(b *testing.B) {
	g, err := duet.WideDeep(duet.DefaultWideDeep())
	e := buildEngine(b, g, err)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Runtime.Run(nil, e.Placement, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Timeline) == 0 {
			b.Fatal("empty timeline")
		}
	}
}

// BenchmarkFig05Communication regenerates Fig. 5: CPU↔GPU bulk transfers
// across the message-size sweep.
func BenchmarkFig05Communication(b *testing.B) {
	for size := 1 << 10; size <= 16<<20; size <<= 4 {
		b.Run(fmt.Sprintf("bytes=%d", size), func(b *testing.B) {
			plat := device.NewPlatform(42)
			var total vclock.Seconds
			for i := 0; i < b.N; i++ {
				total += plat.Link.SampleTransferTime(size)
			}
			b.ReportMetric(total/float64(b.N)*1e3, "virt-ms/op")
		})
	}
}

// BenchmarkFig11EndToEnd regenerates Fig. 11: end-to-end latency of TVM-CPU,
// TVM-GPU and DUET on the three heterogeneous models.
func BenchmarkFig11EndToEnd(b *testing.B) {
	models := []struct {
		name  string
		build func() (*graph.Graph, error)
	}{
		{"WideDeep", func() (*graph.Graph, error) { return duet.WideDeep(duet.DefaultWideDeep()) }},
		{"Siamese", func() (*graph.Graph, error) { return duet.Siamese(duet.DefaultSiamese()) }},
		{"MTDNN", func() (*graph.Graph, error) { return duet.MTDNN(duet.DefaultMTDNN()) }},
	}
	for _, m := range models {
		g, err := m.build()
		e := buildEngine(b, g, err)
		b.Run(m.name+"/TVM-CPU", func(b *testing.B) { measureLoop(b, e, uniformOf(e, device.CPU)) })
		b.Run(m.name+"/TVM-GPU", func(b *testing.B) { measureLoop(b, e, uniformOf(e, device.GPU)) })
		b.Run(m.name+"/DUET", func(b *testing.B) { measureLoop(b, e, e.Placement) })
	}
}

// BenchmarkTab02Profile regenerates Table II: one compiler-aware profiling
// pass over every Wide&Deep subgraph on both devices.
func BenchmarkTab02Profile(b *testing.B) {
	g, err := duet.WideDeep(duet.DefaultWideDeep())
	e := buildEngine(b, g, err)
	prof := &profile.Profiler{Platform: device.NewPlatform(0), Options: duet.DefaultConfig(0).Compiler, Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prof.ProfileAll(e.Graph, e.Partition.Subgraphs()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12TailLatency regenerates Fig. 12: noisy latency sampling of
// TVM-GPU vs DUET on Wide&Deep (tails come from the same samples).
func BenchmarkFig12TailLatency(b *testing.B) {
	g, err := duet.WideDeep(duet.DefaultWideDeep())
	e := buildEngine(b, g, err)
	b.Run("TVM-GPU", func(b *testing.B) { measureLoop(b, e, uniformOf(e, device.GPU)) })
	b.Run("DUET", func(b *testing.B) { measureLoop(b, e, e.Placement) })
}

// BenchmarkFig13Schedulers regenerates Fig. 13: one schedule search per
// iteration for each algorithm.
func BenchmarkFig13Schedulers(b *testing.B) {
	g, err := duet.WideDeep(duet.DefaultWideDeep())
	e := buildEngine(b, g, err)
	s := e.Scheduler
	b.Run("Random", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := s.Measure(s.Random(rng)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RoundRobin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Measure(s.RoundRobin()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RandomCorrection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.RandomCorrection(rand.New(rand.NewSource(int64(i)))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GreedyCorrection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.GreedyCorrection(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Ideal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Ideal(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sweepBench benches DUET vs TVM-GPU for each point of a Fig. 14-17 sweep.
func sweepBench(b *testing.B, xs []int, label string, vary func(duet.WideDeepConfig, int) duet.WideDeepConfig) {
	for _, x := range xs {
		cfg := vary(duet.DefaultWideDeep(), x)
		g, err := duet.WideDeep(cfg)
		e := buildEngine(b, g, err)
		b.Run(fmt.Sprintf("%s=%d/DUET", label, x), func(b *testing.B) { measureLoop(b, e, e.Placement) })
		b.Run(fmt.Sprintf("%s=%d/TVM-GPU", label, x), func(b *testing.B) { measureLoop(b, e, uniformOf(e, device.GPU)) })
	}
}

// BenchmarkFig14RNNLayers regenerates Fig. 14 (stacked RNN depth sweep).
func BenchmarkFig14RNNLayers(b *testing.B) {
	sweepBench(b, []int{1, 2, 4, 8}, "layers", func(c duet.WideDeepConfig, x int) duet.WideDeepConfig {
		c.RNNLayers = x
		return c
	})
}

// BenchmarkFig15CNNDepth regenerates Fig. 15 (ResNet depth sweep).
func BenchmarkFig15CNNDepth(b *testing.B) {
	sweepBench(b, []int{18, 34, 50, 101}, "depth", func(c duet.WideDeepConfig, x int) duet.WideDeepConfig {
		c.CNNDepth = x
		return c
	})
}

// BenchmarkFig16FFNDepth regenerates Fig. 16 (FFN hidden-layer sweep).
func BenchmarkFig16FFNDepth(b *testing.B) {
	sweepBench(b, []int{1, 2, 4, 8}, "hidden", func(c duet.WideDeepConfig, x int) duet.WideDeepConfig {
		c.FFNHidden = x
		return c
	})
}

// BenchmarkFig17BatchSize regenerates Fig. 17 (batch-size sweep).
func BenchmarkFig17BatchSize(b *testing.B) {
	sweepBench(b, []int{2, 4, 8, 16, 32}, "batch", func(c duet.WideDeepConfig, x int) duet.WideDeepConfig {
		c.Batch = x
		return c
	})
}

// BenchmarkTab03ResNetFallback regenerates Table III: DUET vs TVM-GPU on a
// traditional sequential model.
func BenchmarkTab03ResNetFallback(b *testing.B) {
	g, err := duet.ResNet(duet.DefaultResNet(50))
	e := buildEngine(b, g, err)
	b.Run("DUET", func(b *testing.B) { measureLoop(b, e, e.Placement) })
	b.Run("TVM-GPU", func(b *testing.B) { measureLoop(b, e, uniformOf(e, device.GPU)) })
	b.Run("TVM-CPU", func(b *testing.B) { measureLoop(b, e, uniformOf(e, device.CPU)) })
}

// BenchmarkPolicyNoFaultOverhead compares the plain runtime against
// RunWithPolicy with fault tolerance enabled but no injector attached — the
// cost of the policy machinery on the hot path. The virt-ms/op metric is
// identical by construction (no faults means no retries); the wall-clock
// ns/op overhead must stay within a few percent of Run.
func BenchmarkPolicyNoFaultOverhead(b *testing.B) {
	g, err := duet.WideDeep(duet.DefaultWideDeep())
	e := buildEngine(b, g, err)
	b.Run("Run", func(b *testing.B) { measureLoop(b, e, e.Placement) })
	b.Run("RunWithPolicy", func(b *testing.B) {
		pol := runtime.DefaultPolicy()
		b.ResetTimer()
		var total vclock.Seconds
		for i := 0; i < b.N; i++ {
			res, err := e.Runtime.RunWithPolicy(nil, e.Placement, pol)
			if err != nil {
				b.Fatal(err)
			}
			total += res.Latency
		}
		b.ReportMetric(total/float64(b.N)*1e3, "virt-ms/op")
	})
}

// BenchmarkTab01ModelBuild measures zoo graph construction (Table I's
// models) — the compiler front-end cost.
func BenchmarkTab01ModelBuild(b *testing.B) {
	b.Run("WideDeep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := duet.WideDeep(duet.DefaultWideDeep()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Siamese", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := duet.Siamese(duet.DefaultSiamese()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MTDNN", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := duet.MTDNN(duet.DefaultMTDNN()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExperimentHarness smoke-runs the full experiment drivers at
// reduced scale — the end-to-end regeneration path of cmd/duet-bench.
func BenchmarkExperimentHarness(b *testing.B) {
	cfg := experiments.Quick()
	for _, id := range []string{"fig5", "tab1"} {
		e, ok := experiments.ByID(id)
		if !ok {
			b.Fatalf("missing experiment %s", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := e.Run(cfg, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
