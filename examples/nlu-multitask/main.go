// NLU multitask: run MT-DNN — a shared Transformer encoder with independent
// task-specific heads — and show how DUET keeps the encoder on the GPU
// while spreading the recurrent task heads across both devices.
package main

import (
	"flag"
	"fmt"
	"log"

	"duet"
)

var taskNames = []string{"single-sentence classification", "pairwise text similarity", "pairwise ranking", "span labelling"}

func main() {
	full := flag.Bool("full", false, "use the paper's full model size")
	flag.Parse()

	cfg := duet.DefaultMTDNN()
	if !*full {
		// Reduced encoder so the real tensor math runs in seconds.
		cfg.SeqLen = 24
		cfg.ModelDim = 128
		cfg.Heads = 4
		cfg.Layers = 2
		cfg.FFNDim = 256
		cfg.TaskRNN = 64
	}
	g, err := duet.MTDNN(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := duet.Build(g, duet.DefaultConfig(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MT-DNN: %d encoder layers, %d task heads, placement %s\n",
		cfg.Layers, cfg.Tasks, engine.Placement)
	for _, row := range engine.PlacementTable() {
		fmt.Println(" ", row)
	}

	res, err := engine.Infer(duet.MTDNNInputs(cfg, 99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d tasks answered in %.3f ms (virtual):\n", cfg.Tasks, res.Latency*1e3)
	for i, out := range res.Outputs {
		name := "task"
		if i < len(taskNames) {
			name = taskNames[i]
		}
		fmt.Printf("  %-34s → label %d (p=%.3f)\n", name, out.ArgMax(), out.Data()[out.ArgMax()])
	}

	duetLat, _ := engine.Measure(1000)
	gpuLat, _ := engine.MeasureUniform(duet.GPU, 1000)
	var d, gp float64
	for i := range duetLat {
		d += duetLat[i]
		gp += gpuLat[i]
	}
	fmt.Printf("\nmean over 1000 runs: DUET %.3f ms vs TVM-GPU %.3f ms (%.2fx)\n",
		d/1000*1e3, gp/1000*1e3, gp/d)
}
