// Similarity: score query/passage pairs with a Siamese LSTM network whose
// two recurrent branches DUET co-executes on different devices. The model
// here is written in the Relay-like text IR and parsed — demonstrating the
// compiler front-end path (paper §V).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"duet"
)

// The Siamese model as a Relay-like program: two independent LSTM branches
// joined by a cosine-similarity head.
const program = `
fn (%query.ids: Tensor[(1, 24)], %passage.ids: Tensor[(1, 24)]) {
  %q_emb = embedding(%query.ids, @q_table);
  %q_h   = lstm(%q_emb, @q_wx, @q_wh, @q_b) {last_only=1};
  %q_vec = dense(%q_h, @q_proj);
  %p_emb = embedding(%passage.ids, @p_table);
  %p_h   = lstm(%p_emb, @p_wx, @p_wh, @p_b) {last_only=1};
  %p_vec = dense(%p_h, @p_proj);
  %score = cosine_similarity(%q_vec, %p_vec);
  %score
}
`

const (
	vocab  = 200
	embed  = 64
	hidden = 96
	proj   = 32
	seqLen = 24
)

func weights(rng *rand.Rand) map[string]*duet.Tensor {
	w := map[string]*duet.Tensor{}
	for _, side := range []string{"q", "p"} {
		w[side+"_table"] = duet.RandTensor(rng, 0.1, vocab, embed)
		w[side+"_wx"] = duet.RandTensor(rng, 0.1, 4*hidden, embed)
		w[side+"_wh"] = duet.RandTensor(rng, 0.1, 4*hidden, hidden)
		w[side+"_b"] = duet.RandTensor(rng, 0.1, 4*hidden)
		w[side+"_proj"] = duet.RandTensor(rng, 0.1, proj, hidden)
	}
	return w
}

func main() {
	rng := rand.New(rand.NewSource(3))
	g, err := duet.ParseRelay(program, "siamese-relay", weights(rng))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := duet.Build(g, duet.DefaultConfig(21))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed Relay program → %d graph nodes, placement %s\n\n", g.Len(), engine.Placement)

	// Score a few pairs: identical, similar, and random passages.
	query := tokens(rng, seqLen)
	pairs := map[string][]float32{
		"identical passage": append([]float32(nil), query...),
		"shifted passage":   shift(query),
		"random passage":    tokens(rng, seqLen),
	}
	for name, passage := range pairs {
		res, err := engine.Infer(map[string]*duet.Tensor{
			"query.ids":   duet.TensorFromSlice(append([]float32(nil), query...), 1, seqLen),
			"passage.ids": duet.TensorFromSlice(passage, 1, seqLen),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s similarity %+0.4f  (%.3f ms virtual)\n", name, res.Outputs[0].At(0, 0), res.Latency*1e3)
	}

	// Round-trip: show the graph back in its textual IR form.
	text, _, err := duet.FormatRelay(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngraph printed back as Relay (%d bytes)\n", len(text))
}

func tokens(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.Intn(vocab))
	}
	return s
}

func shift(s []float32) []float32 {
	out := append([]float32(nil), s[1:]...)
	return append(out, s[0])
}
