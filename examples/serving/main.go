// Serving: an online-inference queueing study. The paper motivates DUET
// with latency SLAs for online serving (§II-A); this example feeds a DUET
// engine a Poisson request stream on the virtual clock and reports waiting
// + service percentiles against the SLA for increasing offered load,
// comparing DUET's placement with single-device TVM-GPU execution. A second
// table injects runtime faults and compares DUET's failover policy against
// the abort-and-retry-whole-request strategy it replaces.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"duet"
)

func main() {
	var (
		requests  = flag.Int("requests", 4000, "requests per load point")
		slaMs     = flag.Float64("sla", 15, "latency SLA in milliseconds")
		faultRate = flag.Float64("fault-rate", 0.01, "per-kernel/per-transfer fault probability for the fault table")
	)
	flag.Parse()

	g, err := duet.WideDeep(duet.DefaultWideDeep())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := duet.Build(g, duet.DefaultConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	reg := duet.NewMetrics()
	engine.Instrument(reg)
	n := engine.Runtime.NumSubgraphs()
	gpuPlace := make(duet.Placement, n)
	for i := range gpuPlace {
		gpuPlace[i] = duet.GPU
	}

	fmt.Printf("Wide&Deep serving, SLA %.0f ms, %d requests per point\n\n", *slaMs, *requests)
	fmt.Printf("%8s | %22s | %22s\n", "", "DUET", "TVM-GPU")
	fmt.Printf("%8s | %7s %7s %6s | %7s %7s %6s\n", "load", "p50", "p99", "SLA%", "p50", "p99", "SLA%")

	duetSvc := func() (duet.Seconds, error) {
		res, err := engine.Runtime.Run(nil, engine.Placement, false)
		if err != nil {
			return 0, err
		}
		return res.Latency, nil
	}
	gpuSvc := func() (duet.Seconds, error) {
		res, err := engine.Runtime.Run(nil, gpuPlace, false)
		if err != nil {
			return 0, err
		}
		return res.Latency, nil
	}

	for _, qps := range []float64{25, 50, 75, 100, 125, 150} {
		d, err := simulate(duetSvc, qps, *requests, 1)
		if err != nil {
			log.Printf("load %.0f/s: DUET run failed, skipping point: %v", qps, err)
			continue
		}
		gp, err := simulate(gpuSvc, qps, *requests, 2)
		if err != nil {
			log.Printf("load %.0f/s: TVM-GPU run failed, skipping point: %v", qps, err)
			continue
		}
		fmt.Printf("%5.0f/s | %6.2fms %6.2fms %5.1f%% | %6.2fms %6.2fms %5.1f%%\n",
			qps,
			d.p50*1e3, d.p99*1e3, d.slaFrac(*slaMs)*100,
			gp.p50*1e3, gp.p99*1e3, gp.slaFrac(*slaMs)*100)
	}
	fmt.Println("\nDUET's lower service time keeps the queue stable at loads where the")
	fmt.Println("single-device server saturates and response times blow up.")
	liveTable(reg)

	// --- SLA under faults ---------------------------------------------------
	// The same queue, but kernels and transfers now fail with the given
	// probability. The failover policy survives a fault inside the request
	// (retry + migrate + degrade); the abort strategy re-runs the whole
	// request and pays the wasted time again.
	fmt.Printf("\nWith faults injected (rate %.3f per kernel/transfer):\n\n", *faultRate)
	fmt.Printf("%8s | %22s | %22s\n", "", "DUET failover", "abort-and-retry")
	fmt.Printf("%8s | %7s %7s %6s | %7s %7s %6s\n", "load", "p50", "p99", "SLA%", "p50", "p99", "SLA%")

	specs := []duet.FaultSpec{
		duet.FaultKernelFailures(duet.CPU, *faultRate),
		duet.FaultKernelFailures(duet.GPU, *faultRate),
		duet.FaultTransferFailures(*faultRate),
	}
	for _, qps := range []float64{50, 75, 100, 125, 150} {
		failPol := duet.DefaultFaultPolicy()
		failPol.Injector = duet.NewFaultInjector(31, specs...)
		abortPol := duet.FaultPolicy{Injector: duet.NewFaultInjector(31, specs...)}
		fo, err := simulate(resilientService(engine, engine.Placement, failPol), qps, *requests, 3)
		if err != nil {
			log.Printf("load %.0f/s: failover run failed, skipping point: %v", qps, err)
			continue
		}
		ab, err := simulate(resilientService(engine, engine.Placement, abortPol), qps, *requests, 4)
		if err != nil {
			log.Printf("load %.0f/s: abort run failed, skipping point: %v", qps, err)
			continue
		}
		fmt.Printf("%5.0f/s | %6.2fms %6.2fms %5.1f%% | %6.2fms %6.2fms %5.1f%%\n",
			qps,
			fo.p50*1e3, fo.p99*1e3, fo.slaFrac(*slaMs)*100,
			ab.p50*1e3, ab.p99*1e3, ab.slaFrac(*slaMs)*100)
	}
	fmt.Println("\nFailover confines each fault to one subgraph; aborting re-pays the whole")
	fmt.Println("request per fault, so every fault inflates service time by a full run and")
	fmt.Println("the queue destabilises at loads the failover server still sustains.")
	liveTable(reg)
}

// liveTable renders the engine's cumulative metrics from a registry
// snapshot — the view a serving dashboard would poll between load points.
func liveTable(reg *duet.Metrics) {
	s := reg.Snapshot()
	fmt.Println("\nengine metrics (cumulative):")
	fmt.Printf("  %-34s %12s\n", "series", "value")
	for _, name := range []string{
		`duet_runs_total{path="run"}`,
		`duet_runs_total{path="policy"}`,
		"duet_run_errors_total",
		"duet_exhausted_total",
		`duet_retries_total{kind="kernel"}`,
		`duet_retries_total{kind="transfer"}`,
		"duet_failovers_total",
		"duet_breaker_trips_total",
		"duet_degraded_total",
	} {
		if v, ok := s.Counters[name]; ok && v != 0 {
			fmt.Printf("  %-34s %12d\n", name, v)
		}
	}
	for _, name := range []string{
		`duet_device_busy_seconds_total{device="cpu0"}`,
		`duet_device_busy_seconds_total{device="gpu0"}`,
		`duet_device_busy_seconds_total{device="pcie3"}`,
	} {
		if v, ok := s.Gauges[name]; ok {
			fmt.Printf("  %-34s %11.3fs\n", name, v)
		}
	}
	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Printf("  %-34s n=%d p50=%.2fms p99=%.2fms p99.9=%.2fms\n",
			name, h.Count, h.P50*1e3, h.P99*1e3, h.P999*1e3)
	}
}

// resilientService returns a service-time sampler that restarts the whole
// request when the policy's own fault tolerance is exhausted, accumulating
// the wasted virtual time — what a serving layer in front of the engine
// would do.
func resilientService(engine *duet.Engine, place duet.Placement, pol duet.FaultPolicy) func() (duet.Seconds, error) {
	const restartLimit = 25
	return func() (duet.Seconds, error) {
		total := duet.Seconds(0)
		for attempt := 0; ; attempt++ {
			res, err := engine.Runtime.RunWithPolicy(nil, place, pol)
			if err == nil {
				return total + res.Latency, nil
			}
			if !errors.Is(err, duet.ErrFaultExhausted) {
				return 0, err
			}
			total += res.Latency
			if attempt >= restartLimit {
				return total, nil // served far past SLA; count the miss
			}
		}
	}
}

type result struct {
	responses []float64
	p50, p99  float64
}

func (r result) slaFrac(slaMs float64) float64 {
	if len(r.responses) == 0 {
		return 0
	}
	ok := 0
	for _, t := range r.responses {
		if t*1e3 <= slaMs {
			ok++
		}
	}
	return float64(ok) / float64(len(r.responses))
}

// simulate runs an M/G/1 queue: Poisson arrivals at qps, service sampled
// from the provided sampler on the engine's virtual clock, FIFO single
// server (the engine serves one request at a time, like the paper's
// deployment). A sampler error aborts only this load point; the caller
// decides whether to continue the sweep.
func simulate(service func() (duet.Seconds, error), qps float64, n int, seed int64) (result, error) {
	if n <= 0 {
		return result{}, fmt.Errorf("simulate: need at least one request, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	arrival := 0.0
	serverFree := 0.0
	responses := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		arrival += rng.ExpFloat64() / qps
		svc, err := service()
		if err != nil {
			return result{}, fmt.Errorf("simulate: request %d: %w", i, err)
		}
		start := math.Max(arrival, serverFree)
		finish := start + svc
		serverFree = finish
		responses = append(responses, finish-arrival)
	}
	s, ok := duet.TrySummarize(responses)
	if !ok {
		return result{}, fmt.Errorf("simulate: no responses collected")
	}
	return result{
		responses: responses,
		p50:       s.P50,
		p99:       s.P99,
	}, nil
}
