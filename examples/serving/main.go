// Serving: an online-inference queueing study. The paper motivates DUET
// with latency SLAs for online serving (§II-A); this example feeds a DUET
// engine a Poisson request stream on the virtual clock and reports waiting
// + service percentiles against the SLA for increasing offered load,
// comparing DUET's placement with single-device TVM-GPU execution.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"duet"
)

func main() {
	var (
		requests = flag.Int("requests", 4000, "requests per load point")
		slaMs    = flag.Float64("sla", 15, "latency SLA in milliseconds")
	)
	flag.Parse()

	g, err := duet.WideDeep(duet.DefaultWideDeep())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := duet.Build(g, duet.DefaultConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	n := engine.Runtime.NumSubgraphs()
	gpuPlace := make(duet.Placement, n)
	for i := range gpuPlace {
		gpuPlace[i] = duet.GPU
	}

	fmt.Printf("Wide&Deep serving, SLA %.0f ms, %d requests per point\n\n", *slaMs, *requests)
	fmt.Printf("%8s | %22s | %22s\n", "", "DUET", "TVM-GPU")
	fmt.Printf("%8s | %7s %7s %6s | %7s %7s %6s\n", "load", "p50", "p99", "SLA%", "p50", "p99", "SLA%")

	for _, qps := range []float64{25, 50, 75, 100, 125, 150} {
		d := simulate(engine, engine.Placement, qps, *requests, 1)
		gp := simulate(engine, gpuPlace, qps, *requests, 2)
		fmt.Printf("%5.0f/s | %6.2fms %6.2fms %5.1f%% | %6.2fms %6.2fms %5.1f%%\n",
			qps,
			d.p50*1e3, d.p99*1e3, d.slaFrac(*slaMs)*100,
			gp.p50*1e3, gp.p99*1e3, gp.slaFrac(*slaMs)*100)
	}
	fmt.Println("\nDUET's lower service time keeps the queue stable at loads where the")
	fmt.Println("single-device server saturates and response times blow up.")
}

type result struct {
	responses []float64
	p50, p99  float64
	sla       float64
}

func (r result) slaFrac(slaMs float64) float64 {
	ok := 0
	for _, t := range r.responses {
		if t*1e3 <= slaMs {
			ok++
		}
	}
	return float64(ok) / float64(len(r.responses))
}

// simulate runs an M/G/1 queue: Poisson arrivals at qps, service sampled
// from the engine's noisy virtual-clock latency, FIFO single server (the
// engine serves one request at a time, like the paper's deployment).
func simulate(engine *duet.Engine, place duet.Placement, qps float64, n int, seed int64) result {
	rng := rand.New(rand.NewSource(seed))
	arrival := 0.0
	serverFree := 0.0
	responses := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		arrival += rng.ExpFloat64() / qps
		res, err := engine.Runtime.Run(nil, place, false)
		if err != nil {
			log.Fatal(err)
		}
		start := math.Max(arrival, serverFree)
		finish := start + res.Latency
		serverFree = finish
		responses = append(responses, finish-arrival)
	}
	sorted := append([]float64(nil), responses...)
	sort.Float64s(sorted)
	return result{
		responses: responses,
		p50:       sorted[n/2],
		p99:       sorted[n*99/100],
	}
}
