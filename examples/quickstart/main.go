// Quickstart: build a small two-branch model with the public API, let DUET
// partition/profile/schedule it across the CPU and GPU models, and run a
// real inference.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"duet"
)

func main() {
	// A toy heterogeneous model: a recurrent branch (CPU-friendly) and a
	// matrix-heavy branch (GPU-friendly) joined by a dense head.
	rng := rand.New(rand.NewSource(1))
	g := duet.NewGraph("quickstart")

	// Branch 1: LSTM over a short token sequence.
	ids := g.AddInput("tokens", 1, 32)
	table := g.AddConst("embed", duet.RandTensor(rng, 0.1, 100, 64))
	emb := g.Add("embedding", "emb", nil, ids, table)
	wx := g.AddConst("wx", duet.RandTensor(rng, 0.1, 4*128, 64))
	wh := g.AddConst("wh", duet.RandTensor(rng, 0.1, 4*128, 128))
	bias := g.AddConst("b", duet.RandTensor(rng, 0.1, 4*128))
	rnn := g.Add("lstm", "rnn", duet.Attrs{"last_only": 1}, emb, wx, wh, bias)

	// Branch 2: a stack of wide dense layers.
	x := g.AddInput("features", 1, 1024)
	h := x
	for i := 0; i < 3; i++ {
		w := g.AddConst(fmt.Sprintf("w%d", i), duet.RandTensor(rng, 0.05, 1024, 1024))
		d := g.Add("dense", fmt.Sprintf("dense%d", i), nil, h, w)
		h = g.Add("relu", fmt.Sprintf("relu%d", i), nil, d)
	}

	// Join.
	cat := g.Add("concat", "cat", duet.Attrs{"axis": 1}, rnn, h)
	wOut := g.AddConst("w_out", duet.RandTensor(rng, 0.05, 10, 128+1024))
	logits := g.Add("dense", "head", nil, cat, wOut)
	probs := g.Add("softmax", "probs", nil, logits)
	g.SetOutputs(probs)

	// Build the engine: partition → profile → schedule (→ fallback).
	engine, err := duet.Build(g, duet.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placement: %s (fellback=%v)\n", engine.Placement, engine.FellBack)
	for _, row := range engine.PlacementTable() {
		fmt.Println(" ", row)
	}

	// One real inference.
	inputs := map[string]*duet.Tensor{
		"tokens":   duet.TensorFromSlice(seq(32), 1, 32),
		"features": duet.RandTensor(rng, 1, 1, 1024),
	}
	res, err := engine.Infer(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninference latency (virtual): %.3f ms\n", res.Latency*1e3)
	fmt.Printf("class probabilities: %v\n", res.Outputs[0])
	fmt.Printf("predicted class: %d\n", res.Outputs[0].ArgMax())
}

func seq(n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(i % 100)
	}
	return s
}
