// Recommender: serve the Wide-and-Deep network — the paper's headline
// workload — comparing DUET's heterogeneous placement against single-device
// execution and showing the execution timeline of one request.
//
// The default configuration uses a reduced image/sequence size so the real
// tensor math completes in seconds on a laptop; pass -full for the paper's
// Table I configuration (timing-only comparison stays fast either way).
package main

import (
	"flag"
	"fmt"
	"log"

	"duet"
)

func main() {
	full := flag.Bool("full", false, "use the paper's full model size")
	flag.Parse()

	cfg := duet.DefaultWideDeep()
	if !*full {
		cfg.ImageSize = 64
		cfg.SeqLen = 24
		cfg.FFNWidth = 256
	}
	g, err := duet.WideDeep(cfg)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := duet.Build(g, duet.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Wide&Deep: %.1fM params, %d subgraphs, placement %s\n",
		float64(duet.ParamCount(g))/1e6, engine.Runtime.NumSubgraphs(), engine.Placement)
	for _, row := range engine.PlacementTable() {
		fmt.Println(" ", row)
	}

	// Latency comparison (timing-only, 2000 requests).
	duetLat, err := engine.Measure(2000)
	if err != nil {
		log.Fatal(err)
	}
	cpuLat, _ := engine.MeasureUniform(duet.CPU, 2000)
	gpuLat, _ := engine.MeasureUniform(duet.GPU, 2000)
	mean := func(s []duet.Seconds) float64 {
		var sum float64
		for _, v := range s {
			sum += v
		}
		return sum / float64(len(s)) * 1e3
	}
	fmt.Printf("\nmean latency over 2000 requests:\n")
	fmt.Printf("  DUET    %7.3f ms\n  TVM-CPU %7.3f ms (%.2fx slower)\n  TVM-GPU %7.3f ms (%.2fx slower)\n",
		mean(duetLat), mean(cpuLat), mean(cpuLat)/mean(duetLat), mean(gpuLat), mean(gpuLat)/mean(duetLat))

	// One real recommendation request.
	inputs := duet.WideDeepInputs(cfg, 1234)
	res, err := engine.Infer(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrequest served in %.3f ms (virtual); top item: %d\n", res.Latency*1e3, res.Outputs[0].ArgMax())
	fmt.Println("\nexecution timeline:")
	for _, s := range res.Timeline {
		fmt.Printf("  %-9s %8.3f..%8.3f ms  %s\n", s.Device, s.Start*1e3, s.End*1e3, s.Label)
	}
}
