package duet_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"duet"
	"duet/internal/compiler"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/modelio"
	"duet/internal/partition"
	"duet/internal/relay"
	"duet/internal/runtime"
	"duet/internal/tensor"
)

// randomDAG generates a random valid model graph over 2-D tensors: dense
// layers change width, elementwise ops preserve it, adds join equal-width
// values, concats join along the feature axis. Every generated graph is a
// legal DUET input, which makes these property tests bite across the whole
// stack: shape inference, optimization, partitioning, scheduling, and
// heterogeneous execution.
func randomDAG(rng *rand.Rand) (*graph.Graph, map[string]*tensor.Tensor) {
	g := graph.New(fmt.Sprintf("rand%d", rng.Int31()))
	inputs := map[string]*tensor.Tensor{}

	type val struct {
		id  graph.NodeID
		dim int
	}
	var vals []val
	nIn := 1 + rng.Intn(3)
	for i := 0; i < nIn; i++ {
		dim := 8 << rng.Intn(3) // 8, 16, 32
		name := fmt.Sprintf("x%d", i)
		id := g.AddInput(name, 1, dim)
		inputs[name] = tensor.Rand(rng, 1, 1, dim)
		vals = append(vals, val{id, dim})
	}

	nOps := 4 + rng.Intn(12)
	for i := 0; i < nOps; i++ {
		pick := vals[rng.Intn(len(vals))]
		switch rng.Intn(6) {
		case 0, 1: // dense to a new width
			out := 8 << rng.Intn(3)
			w := g.AddConst(fmt.Sprintf("w%d", i), tensor.Rand(rng, 0.3, out, pick.dim))
			id := g.Add("dense", fmt.Sprintf("dense%d", i), nil, pick.id, w)
			vals = append(vals, val{id, out})
		case 2: // unary elementwise
			ops := []string{"relu", "sigmoid", "tanh", "gelu"}
			id := g.Add(ops[rng.Intn(len(ops))], fmt.Sprintf("un%d", i), nil, pick.id)
			vals = append(vals, val{id, pick.dim})
		case 3: // add with an equal-width partner (if any)
			var partner *val
			for _, v := range vals {
				if v.dim == pick.dim && v.id != pick.id {
					partner = &v
					break
				}
			}
			if partner == nil {
				id := g.Add("relu", fmt.Sprintf("un%d", i), nil, pick.id)
				vals = append(vals, val{id, pick.dim})
				break
			}
			id := g.Add("add", fmt.Sprintf("add%d", i), nil, pick.id, partner.id)
			vals = append(vals, val{id, pick.dim})
		case 4: // concat two values
			other := vals[rng.Intn(len(vals))]
			id := g.Add("concat", fmt.Sprintf("cat%d", i), graph.Attrs{"axis": 1}, pick.id, other.id)
			vals = append(vals, val{id, pick.dim + other.dim})
		case 5: // softmax (keeps width)
			id := g.Add("softmax", fmt.Sprintf("sm%d", i), nil, pick.id)
			vals = append(vals, val{id, pick.dim})
		}
	}

	// Outputs: every value with no consumer (guaranteeing full liveness).
	consumers := g.Consumers()
	var outs []graph.NodeID
	for _, v := range vals {
		if len(consumers[v.id]) == 0 && !g.Node(v.id).IsInput() {
			outs = append(outs, v.id)
		}
	}
	if len(outs) == 0 {
		outs = append(outs, vals[len(vals)-1].id)
	}
	g.SetOutputs(outs...)
	return g, inputs
}

func TestRandomDAGsFullPipeline(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		g, inputs := randomDAG(rng)

		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: invalid generated graph: %v", trial, err)
		}
		if err := compiler.InferShapes(g); err != nil {
			t.Fatalf("trial %d: shape inference: %v", trial, err)
		}

		// Reference result: unoptimized whole-graph execution.
		ref, err := compiler.Compile(g, compiler.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := ref.Execute(inputs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Optimized execution must match.
		opt, err := compiler.Compile(g, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := opt.Execute(inputs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if !tensor.AllClose(got[i], want[i], 1e-4, 1e-4) {
				t.Fatalf("trial %d: optimization changed output %d by %g", trial, i, tensor.MaxAbsDiff(got[i], want[i]))
			}
		}

		// Partition invariants.
		p, err := partition.Build(g)
		if err != nil {
			t.Fatalf("trial %d: partition: %v", trial, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: partition invariants: %v", trial, err)
		}

		// Heterogeneous execution equivalence on random placements.
		e, err := runtime.New(p, device.NewPlatform(0), compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := e.NumSubgraphs()
		places := []runtime.Placement{
			runtime.Uniform(n, device.CPU),
			runtime.Uniform(n, device.GPU),
		}
		for k := 0; k < 2; k++ {
			pl := make(runtime.Placement, n)
			for i := range pl {
				pl[i] = device.Kind(rng.Intn(2))
			}
			places = append(places, pl)
		}
		for _, pl := range places {
			res, err := e.Run(inputs, pl, true)
			if err != nil {
				t.Fatalf("trial %d placement %s: %v", trial, pl, err)
			}
			for i := range want {
				if !tensor.AllClose(res.Outputs[i], want[i], 1e-4, 1e-4) {
					t.Fatalf("trial %d placement %s: output %d diverges by %g",
						trial, pl, i, tensor.MaxAbsDiff(res.Outputs[i], want[i]))
				}
			}
			if res.Latency <= 0 {
				t.Fatalf("trial %d: non-positive latency", trial)
			}
		}
	}
}

func TestRandomDAGsRelayRoundTrip(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		g, inputs := randomDAG(rng)
		if err := compiler.InferShapes(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m, weights, err := relay.FromGraph(g)
		if err != nil {
			t.Fatalf("trial %d: FromGraph: %v", trial, err)
		}
		// Text round trip.
		reparsed, err := relay.Parse(m.String())
		if err != nil {
			t.Fatalf("trial %d: printed module does not reparse: %v\n%s", trial, err, m.String())
		}
		g2, err := relay.ToGraph(reparsed, g.Name, weights)
		if err != nil {
			t.Fatalf("trial %d: ToGraph: %v", trial, err)
		}
		// Execution equivalence.
		m1, err := compiler.Compile(g, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m2, err := compiler.Compile(g2, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		o1, err := m1.Execute(inputs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		o2, err := m2.Execute(inputs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range o1 {
			if !tensor.AllClose(o1[i], o2[i], 0, 0) {
				t.Fatalf("trial %d: relay round trip changed output %d", trial, i)
			}
		}
	}
}

func TestRandomDAGsModelIORoundTrip(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		g, inputs := randomDAG(rng)
		var buf bytes.Buffer
		if err := modelio.Save(g, &buf); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g2, err := modelio.Load(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m1, err := compiler.Compile(g, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		m2, err := compiler.Compile(g2, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		o1, err := m1.Execute(inputs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		o2, err := m2.Execute(inputs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range o1 {
			if !tensor.AllClose(o1[i], o2[i], 0, 0) {
				t.Fatalf("trial %d: modelio round trip changed output %d", trial, i)
			}
		}
	}
}

func TestRandomDAGsDUETNeverLoses(t *testing.T) {
	// DUET's chosen placement (with fallback) must never be slower than
	// both uniform placements — the engine's core contract (§VI-E).
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		g, _ := randomDAG(rng)
		cfg := duet.DefaultConfig(0)
		cfg.ProfileRuns = 1
		engine, err := duet.Build(g, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d, err := engine.Measure(1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c, err := engine.MeasureUniform(duet.CPU, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gp, err := engine.MeasureUniform(duet.GPU, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best := c[0]
		if gp[0] < best {
			best = gp[0]
		}
		if d[0] > best*1.001 {
			t.Fatalf("trial %d: DUET %v slower than best uniform %v (placement %s)", trial, d[0], best, engine.Placement)
		}
	}
}

func TestSavedModelRebuildsIdenticalEngine(t *testing.T) {
	// Serialise Wide&Deep, reload it, and rebuild the engine: the placement
	// decision and deterministic latency must be identical — the deployment
	// path (train once, ship the model file, schedule on the target).
	g1, err := duet.WideDeep(duet.DefaultWideDeep())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := duet.SaveModel(g1, &buf); err != nil {
		t.Fatal(err)
	}
	g2, err := duet.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := duet.DefaultConfig(0)
	cfg.ProfileRuns = 2
	e1, err := duet.Build(g1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := duet.Build(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Placement.String() != e2.Placement.String() {
		t.Fatalf("placement changed after model round trip: %s vs %s", e1.Placement, e2.Placement)
	}
	l1, _ := e1.Measure(1)
	l2, _ := e2.Measure(1)
	if l1[0] != l2[0] {
		t.Fatalf("latency changed after model round trip: %v vs %v", l1[0], l2[0])
	}
}

func TestZooModelsSurviveRelayRoundTripWithSamePlacement(t *testing.T) {
	// The Siamese model raised to the text IR and lowered back must produce
	// the same partition shape and scheduling decision.
	g1, err := duet.Siamese(duet.DefaultSiamese())
	if err != nil {
		t.Fatal(err)
	}
	text, weights, err := duet.FormatRelay(g1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := duet.ParseRelay(text, "siamese-rt", weights)
	if err != nil {
		t.Fatal(err)
	}
	cfg := duet.DefaultConfig(0)
	cfg.ProfileRuns = 1
	e1, err := duet.Build(g1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := duet.Build(g2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Placement.String() != e2.Placement.String() {
		t.Fatalf("relay round trip changed placement: %s vs %s", e1.Placement, e2.Placement)
	}
}
