// Package duet is a DNN inference engine that co-executes a single model on
// a coupled CPU-GPU architecture, reproducing "DUET: A Compiler-Runtime
// Subgraph Scheduling Approach for Tensor Programs on a Coupled CPU-GPU
// Architecture" (IPDPS 2021).
//
// A model is a dataflow graph of tensor operators (built directly with
// NewGraph or parsed from the Relay-like text IR with ParseRelay). Build
// runs DUET's pipeline over it:
//
//  1. coarse-grained multi-phase partitioning into sequential and
//     multi-path phases of subgraphs,
//  2. compiler-aware profiling of every subgraph (compiled through the full
//     graph-optimization pipeline) on both device models, and
//  3. greedy-correction scheduling that maps subgraphs to CPU and GPU,
//     falling back to the best single device when co-execution loses.
//
// Because Go has no GPU backend, devices are calibrated analytic models
// advancing a virtual clock (see DESIGN.md); tensor values are computed for
// real on the host, so Engine.Infer returns numerically correct outputs
// while latencies are deterministic under a seed.
//
// Quickstart:
//
//	g := duet.NewGraph("two-branch")
//	x := g.AddInput("x", 1, 512)
//	...
//	engine, err := duet.Build(g, duet.DefaultConfig(42))
//	res, err := engine.Infer(map[string]*duet.Tensor{"x": input})
package duet

import (
	"io"

	"duet/internal/cluster"
	"duet/internal/compiler"
	"duet/internal/core"
	"duet/internal/costmodel"
	"duet/internal/device"
	"duet/internal/faults"
	"duet/internal/graph"
	"duet/internal/modelio"
	"duet/internal/obs"
	"duet/internal/profile"
	"duet/internal/relay"
	"duet/internal/runtime"
	"duet/internal/schedule"
	"duet/internal/serve"
	"duet/internal/stats"
	"duet/internal/tensor"
	"duet/internal/vclock"
)

// Graph is a dataflow DAG of tensor operators.
type Graph = graph.Graph

// Attrs carries operator attributes (stride, axis, hidden size, ...).
type Attrs = graph.Attrs

// Tensor is a dense row-major float32 tensor.
type Tensor = tensor.Tensor

// Engine is a built DUET engine: partitioned, profiled, and scheduled.
type Engine = core.Engine

// Config controls engine construction; see DefaultConfig.
type Config = core.Config

// ProfileMode selects how Build obtains per-subgraph device costs
// (Config.Mode): measured micro-benchmarks, learned cost-model
// predictions, or hybrid critical-anchor measurement.
type ProfileMode = core.ProfileMode

// Profile modes.
const (
	ProfileMeasured  = core.ProfileMeasured
	ProfilePredicted = core.ProfilePredicted
	ProfileHybrid    = core.ProfileHybrid
)

// CostModel is the learned per-device latency regressor consumed by the
// predicted and hybrid profile modes (Config.CostModel) and refined
// online by Engine.RefineCostModel.
type CostModel = costmodel.Model

// LoadCostModel reads a cost model saved with CostModel.Save (for
// example the repo's committed COSTMODEL.json artifact).
func LoadCostModel(r io.Reader) (*CostModel, error) { return costmodel.Load(r) }

// ProfileCache is a content-addressed cache of measured profile records;
// share one across Builds (Config.ProfileCache) to compile and
// micro-benchmark each distinct graph once per process.
type ProfileCache = profile.Cache

// NewProfileCache returns an empty profile cache.
func NewProfileCache() *ProfileCache { return profile.NewCache() }

// Result is the outcome of one inference: outputs, virtual latency, and the
// execution timeline.
type Result = runtime.Result

// Placement maps subgraphs to devices ('C'/'G' in its String form).
type Placement = runtime.Placement

// DeviceKind distinguishes the CPU and GPU device models.
type DeviceKind = device.Kind

// Device kinds.
const (
	CPU = device.CPU
	GPU = device.GPU
)

// Seconds is a virtual-clock duration.
type Seconds = vclock.Seconds

// FaultPolicy configures runtime fault tolerance for Engine.InferWithPolicy
// and Engine.MeasureWithPolicy: bounded retries with exponential backoff on
// the virtual clock, failover migration to the other device, and a
// per-device circuit breaker that degrades the remaining placement to the
// surviving device with probation-based re-admission.
type FaultPolicy = runtime.Policy

// FaultReport summarises one run's fault-tolerance activity (Result.Faults).
type FaultReport = runtime.FaultReport

// HealthTracker is the concurrent per-device circuit breaker; share one
// across requests via FaultPolicy.Health to carry health state in a serving
// loop.
type HealthTracker = runtime.HealthTracker

// FaultInjector is a deterministic, seedable fault source hooked into the
// device models' sample sites.
type FaultInjector = faults.Injector

// FaultSpec configures one fault source inside an injector.
type FaultSpec = faults.Spec

// FaultKind enumerates the injectable fault classes.
type FaultKind = faults.Kind

// Injectable fault kinds.
const (
	FaultKernelSlowdown  = faults.KernelSlowdown
	FaultKernelStall     = faults.KernelStall
	FaultKernelFailure   = faults.KernelFailure
	FaultTransferFailure = faults.TransferFailure
	FaultDeviceOutage    = faults.DeviceOutage
	FaultNodeCrash       = faults.NodeCrash
	FaultLinkPartition   = faults.LinkPartition
	FaultMessageLoss     = faults.MessageLoss
	FaultMessageDelay    = faults.MessageDelay
)

// ErrFaultExhausted reports that a run failed on every device the policy
// allowed, after every permitted retry (match with errors.Is).
var ErrFaultExhausted = runtime.ErrExhausted

// DefaultFaultPolicy returns the recommended production fault policy (no
// injector: attach one for fault-injection studies).
func DefaultFaultPolicy() FaultPolicy { return runtime.DefaultPolicy() }

// NewFaultInjector returns a seeded injector; the same seed and call
// sequence reproduce the same fault schedule exactly.
func NewFaultInjector(seed int64, specs ...FaultSpec) *FaultInjector {
	return faults.New(seed, specs...)
}

// NewHealthTracker returns a circuit breaker tripping after threshold
// consecutive failures and probing again after probation virtual seconds.
func NewHealthTracker(threshold int, probation Seconds) *HealthTracker {
	return runtime.NewHealthTracker(threshold, probation)
}

// Fault-spec constructors, re-exported for building injection studies.
var (
	// FaultSlowdown multiplies kernel durations on a device.
	FaultSlowdown = faults.Slowdown
	// FaultStalls adds a fixed stall to kernels on a device.
	FaultStalls = faults.Stalls
	// FaultKernelFailures fails kernels on a device with a probability.
	FaultKernelFailures = faults.KernelFailures
	// FaultTransferFailures fails link transfers with a probability.
	FaultTransferFailures = faults.TransferFailures
	// FaultOutage takes a device offline at a virtual time, optionally
	// recovering after a duration.
	FaultOutage = faults.Outage
	// FaultCrash takes a whole serving node offline at a virtual time,
	// losing its in-flight work (cluster fabric).
	FaultCrash = faults.Crash
	// FaultPartition cuts the router↔node link without killing the node.
	FaultPartition = faults.Partition
	// FaultMessageLosses drops router↔node messages with a probability.
	FaultMessageLosses = faults.MessageLosses
	// FaultMessageDelays adds latency to router↔node messages with a
	// probability.
	FaultMessageDelays = faults.MessageDelays
)

// LatencySummary is the percentile summary of a latency sample set
// (mean, min/max, P50/P99/P99.9).
type LatencySummary = stats.Summary

// Summarize computes the latency summary of samples; it panics on an empty
// slice (use TrySummarize in serving paths). The input is never mutated.
func Summarize(samples []Seconds) LatencySummary { return stats.Summarize(samples) }

// TrySummarize is the non-panicking Summarize: ok is false (and the
// summary zero) for an empty sample set.
func TrySummarize(samples []Seconds) (LatencySummary, bool) { return stats.TrySummarize(samples) }

// Metrics is a concurrency-safe metrics registry (counters, gauges,
// exact-quantile latency histograms). Attach one to a built engine with
// Engine.Instrument, then export it with Metrics.WritePrometheus (text
// exposition format), Metrics.WriteJSON, or Metrics.Snapshot.
type Metrics = obs.Registry

// MetricsSnapshot is a point-in-time JSON-marshalable view of a Metrics
// registry.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// TraceSpan is one interval on a named track in a request trace.
type TraceSpan = obs.Span

// RequestTrace is a concurrency-safe span recorder for one request; export
// with RequestTrace.ChromeTrace.
type RequestTrace = obs.Trace

// NewRequestTrace returns an empty request trace.
func NewRequestTrace() *RequestTrace { return obs.NewTrace() }

// ScheduleAudit is the structured decision trail of one greedy-correction
// scheduling run; obtain one from Engine.ScheduleAudit.
type ScheduleAudit = schedule.Audit

// NewGraph returns an empty model graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// Build constructs a DUET engine for the graph: validate, partition,
// profile, schedule, and apply the single-device fallback.
func Build(g *Graph, cfg Config) (*Engine, error) { return core.Build(g, cfg) }

// DefaultConfig returns the paper's engine configuration under the given
// noise seed (0 = noiseless, fully deterministic timing).
func DefaultConfig(seed int64) Config { return core.DefaultConfig(seed) }

// CompilerOptions selects graph-level optimizations (all enabled by
// default); see Config.Compiler.
type CompilerOptions = compiler.Options

// FusionLevel selects how aggressively the compiler fuses operators into
// kernels (Config.FusionLevel).
type FusionLevel = compiler.FusionLevel

// Fusion levels: one kernel per node, the legacy dense-epilogue matcher,
// or maximal groups over arbitrary elementwise chains (the default).
const (
	FusionAuto          = compiler.FusionAuto
	FusionOff           = compiler.FusionOff
	FusionLegacy        = compiler.FusionLegacy
	FusionUnconstrained = compiler.FusionUnconstrained
)

// ParseFusionLevel maps a flag string (off|legacy|unconstrained|auto) to a
// FusionLevel.
func ParseFusionLevel(s string) (FusionLevel, error) { return compiler.ParseFusionLevel(s) }

// ParseRelay parses a model written in the package's Relay-like text IR and
// lowers it to a graph, resolving @name weight references from weights.
func ParseRelay(src, name string, weights map[string]*Tensor) (*Graph, error) {
	m, err := relay.Parse(src)
	if err != nil {
		return nil, err
	}
	return relay.ToGraph(m, name, weights)
}

// FormatRelay raises a graph back to its Relay-like textual form, returning
// the program text and the weight environment.
func FormatRelay(g *Graph) (string, map[string]*Tensor, error) {
	m, w, err := relay.FromGraph(g)
	if err != nil {
		return "", nil, err
	}
	return m.String(), w, nil
}

// SaveModel serialises a graph with its weights to w (JSON with base64
// float32 payloads); LoadModel reads it back. The round trip preserves
// structure, attributes, and every weight bit.
func SaveModel(g *Graph, w io.Writer) error { return modelio.Save(g, w) }

// LoadModel reads a graph written by SaveModel.
func LoadModel(r io.Reader) (*Graph, error) { return modelio.Load(r) }

// Tensor constructors, re-exported for building inputs and weights.
var (
	// NewTensor returns a zero tensor of the given shape.
	NewTensor = tensor.New
	// TensorFromSlice wraps a []float32 in a tensor of the given shape.
	TensorFromSlice = tensor.FromSlice
	// TensorFull returns a constant-filled tensor.
	TensorFull = tensor.Full
	// RandTensor returns a uniform random tensor from a seeded RNG.
	RandTensor = tensor.Rand
)

// Serving layer: a concurrent inference server over a built engine with
// replica workers, dynamic micro-batching, deadline-aware admission, and
// pipelined cross-device execution. See package duet/internal/serve.

// ServeConfig assembles a Server (engine, replicas, batching policy,
// admission control, instrumentation).
type ServeConfig = serve.Config

// Server schedules concurrent inference over a replica pool; construct
// with NewServer, drive with Server.Run, release with Server.Close.
type Server = serve.Server

// ServeRequest is one inference request in a served stream.
type ServeRequest = serve.Request

// ServeResponse is the terminal disposition of one served request.
type ServeResponse = serve.Response

// ServeReport aggregates one Server.Run (throughput, tail latency,
// batching, per-replica utilization).
type ServeReport = serve.Report

// ServeLoadSpec parameterises the open-loop load generator.
type ServeLoadSpec = serve.LoadSpec

// ServeOutcome classifies how a served request terminated.
type ServeOutcome = serve.Outcome

// Served-request outcomes.
const (
	ServeOK       = serve.OK
	ServeRejected = serve.Rejected
	ServeExpired  = serve.Expired
	ServeFailed   = serve.Failed
)

// NewServer validates the configuration and starts the replica device
// workers.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// ServeOpenLoop materialises a deterministic request stream: Poisson
// arrivals at QPS or an all-at-once burst.
func ServeOpenLoop(spec ServeLoadSpec) []ServeRequest { return serve.OpenLoop(spec) }

// Cluster fabric: a multi-node serving fabric — consistent-hash routing by
// session, health-aware failover under per-node circuit breakers, bounded
// retries, hedged requests, and priority-aware brownout — run as one
// deterministic discrete-event simulation, so an entire cluster run
// (fault schedule included) replays byte-for-byte. See package
// duet/internal/cluster.

// ClusterConfig assembles a Cluster (ring shape, timeouts, breaker and
// brownout policy, fault injector, instrumentation).
type ClusterConfig = cluster.Config

// Cluster is the serving fabric: a router plus its member nodes.
type Cluster = cluster.Cluster

// ClusterRequest is one inference submitted to the cluster router.
type ClusterRequest = cluster.Request

// ClusterResponse is the router's terminal disposition of one request.
type ClusterResponse = cluster.Response

// ClusterReport aggregates one Cluster.Run (outcomes, retries, failovers,
// hedges, breaker activity, latency quantiles, replayable event trace).
type ClusterReport = cluster.Report

// NewCluster assembles a cluster over the given serving nodes (one Server
// per node) and machine-checks its routing table with the verifier's
// shard-map pass.
func NewCluster(cfg ClusterConfig, nodes []*Server) (*Cluster, error) {
	return cluster.New(cfg, nodes)
}
