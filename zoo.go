package duet

import (
	"duet/internal/models"
	"duet/internal/workload"
)

// Model zoo: the paper's evaluation networks, re-exported with their
// default (Table I) configurations and matching seeded input generators.

// WideDeepConfig parameterises the Wide-and-Deep network.
type WideDeepConfig = models.WideDeepConfig

// SiameseConfig parameterises the Siamese LSTM similarity network.
type SiameseConfig = models.SiameseConfig

// MTDNNConfig parameterises the multi-task Transformer network.
type MTDNNConfig = models.MTDNNConfig

// ResNetConfig parameterises the ResNet family.
type ResNetConfig = models.ResNetConfig

// VGGConfig parameterises VGG-16.
type VGGConfig = models.VGGConfig

// SqueezeNetConfig parameterises SqueezeNet 1.0.
type SqueezeNetConfig = models.SqueezeNetConfig

// GoogLeNetConfig parameterises GoogLeNet (Inception v1).
type GoogLeNetConfig = models.GoogLeNetConfig

// Model builders and default configurations.
var (
	// WideDeep builds the Wide-and-Deep graph (wide linear + FFN + stacked
	// LSTM + ResNet encoder, concatenated into a joint head).
	WideDeep = models.WideDeep
	// DefaultWideDeep is the paper's Wide&Deep configuration.
	DefaultWideDeep = models.DefaultWideDeep
	// Siamese builds the two-branch LSTM similarity network.
	Siamese = models.Siamese
	// DefaultSiamese is the paper's Siamese configuration.
	DefaultSiamese = models.DefaultSiamese
	// MTDNN builds the multi-task Transformer with independent task heads.
	MTDNN = models.MTDNN
	// DefaultMTDNN is the paper's MT-DNN configuration.
	DefaultMTDNN = models.DefaultMTDNN
	// ResNet builds a standalone ResNet classifier (18/34/50/101).
	ResNet = models.ResNet
	// DefaultResNet is the traditional-model configuration of Table III.
	DefaultResNet = models.DefaultResNet
	// VGG builds the VGG-16 sequential CNN.
	VGG = models.VGG
	// DefaultVGG is VGG-16 at ImageNet resolution.
	DefaultVGG = models.DefaultVGG
	// SqueezeNet builds the SqueezeNet 1.0 CNN with Fire modules.
	SqueezeNet = models.SqueezeNet
	// DefaultSqueezeNet is SqueezeNet at ImageNet resolution.
	DefaultSqueezeNet = models.DefaultSqueezeNet
	// GoogLeNet builds the Inception v1 CNN with 4-way fan-out modules.
	GoogLeNet = models.GoogLeNet
	// DefaultGoogLeNet is GoogLeNet at ImageNet resolution.
	DefaultGoogLeNet = models.DefaultGoogLeNet
	// ParamCount returns the total weight-element count of a graph.
	ParamCount = models.ParamCount
)

// Seeded workload generators matching the zoo models' input names.
var (
	// WideDeepInputs generates one Wide&Deep query batch.
	WideDeepInputs = workload.WideDeepInputs
	// SiameseInputs generates one query/passage pair.
	SiameseInputs = workload.SiameseInputs
	// MTDNNInputs generates one token sequence.
	MTDNNInputs = workload.MTDNNInputs
	// ResNetInputs generates one image batch.
	ResNetInputs = workload.ResNetInputs
)
