GO ?= go

.PHONY: all build check fmt-check vet test test-race test-short bench bench-obs bench-kernels bench-serve bench-cluster bench-sched bench-diff bench-dash costmodel experiments quick-experiments report fuzz clean

all: build check

build:
	$(GO) build ./...
	$(GO) vet ./...

## Full verification gate: formatting, vet, and the race-enabled test suite.
## The default `make` target runs this, so concurrency regressions (executor
## workers, health tracker, MPMC queue, metrics registry) cannot slip through
## a plain build. The obs package gets an extra high-iteration race pass: it
## is touched from every worker goroutine in the runtime.
## The allocation guard runs without -race: the race detector makes
## sync.Pool randomly drop Puts, so arena accounting is only meaningful in
## a plain build (the test skips itself under -race).
## The serve package gets a dedicated high-iteration race pass: replicas
## share compiled modules and the weight pack cache while drawing
## activations from separate arenas, and the smoke test pins the pipelined
## serving stack's throughput floor over the serial Infer loop.
## The cluster package gets a dedicated chaos smoke: the crash-failover and
## trace-determinism tests re-run under -race, pinning the fabric's
## zero-loss and byte-replayable guarantees on every gate.
check: fmt-check vet
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/obs/...
	$(GO) test -race -count=2 -run 'TestConcurrentExecuteArena|TestServeSmoke' ./internal/serve/
	$(GO) test -race -count=1 -run 'TestClusterChaosCrashFailover|TestClusterTraceDeterminism' ./internal/cluster/
	$(GO) test -count=1 -run TestArenaCutsSteadyStateAllocs ./internal/runtime/
	$(MAKE) bench-diff
	@./bin/duet-vet -summary .

## Wall-clock budget for the vet target, in seconds. The recipe prints the
## elapsed time every run and fails when the budget is blown, so analyzer
## slowdowns surface as a red gate instead of silently taxing every check.
VET_BUDGET ?= 180

## duet-vet is a file target on its own sources (the analysis framework,
## the command, and the verify package it prints the pass roster from), so
## editing an analyzer rebuilds the binary. A stale bin/duet-vet previously
## let `make vet` pass against code the current analyzers would flag.
DUET_VET_SRC := $(wildcard cmd/duet-vet/*.go) $(wildcard internal/analysis/*.go) $(wildcard internal/verify/*.go) go.mod

bin/duet-vet: $(DUET_VET_SRC)
	$(GO) build -o $@ ./cmd/duet-vet

## Static analysis gate: stock go vet plus the repo's custom analyzer suite
## (vclockpurity, arenainto, obsnames, lockorder, chanleak, sharednoescape)
## run through the real -vettool protocol. govulncheck runs when installed;
## the container image does not ship it, so its absence is not a failure.
vet: bin/duet-vet
	@start=$$(date +%s) && \
	$(GO) vet ./... && \
	$(GO) vet -vettool=$(abspath bin/duet-vet) ./... && \
	if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; fi && \
	end=$$(date +%s) && elapsed=$$((end - start)) && \
	echo "vet: completed in $${elapsed}s (budget $(VET_BUDGET)s)" && \
	if [ $$elapsed -gt $(VET_BUDGET) ]; then \
		echo "vet: exceeded the $(VET_BUDGET)s timing budget"; exit 1; fi

## Fail if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test: check
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

## Regenerate every paper table/figure at paper scale (5000 runs).
experiments:
	$(GO) run ./cmd/duet-bench | tee experiments_full.txt

## Fast smoke pass over all experiments.
quick-experiments:
	$(GO) run ./cmd/duet-bench -quick

## Machine-readable report at paper scale (for plotting). For the quick
## regression baseline that `make compare` consumes, see the report.json
## file rule below.
report:
	$(GO) run ./cmd/duet-bench -json report.json

## Baseline for `make compare`: generated at quick scale when absent so
## compare works from a fresh checkout. Note `make report` overwrites it
## with a paper-scale report; regenerate with `rm report.json && make
## compare` before comparing again (both sides must be the same scale).
report.json:
	@echo "report.json missing; generating a quick-scale comparison baseline"
	$(GO) run ./cmd/duet-bench -quick -json report.json

## Check a fresh quick run against the stored baseline report. For
## statistics-backed gating over the committed BENCH_*.json suites, use
## bench-diff instead.
compare: report.json
	$(GO) run ./cmd/duet-bench -quick -compare report.json

## Statistical perf-regression gate: re-run every suite at quick scale
## with seed-varied fresh runs and compare per-metric sample sets against
## the committed BENCH_*.json baselines (Mann-Whitney U + median CI,
## direction-aware per-suite schema). Exits non-zero when a gated metric
## regresses beyond its threshold.
bench-diff:
	$(GO) run ./cmd/duet-benchdiff

## Render the static trend dashboard (docs/bench/index.html + trends.json)
## from the run-history sections of the committed baselines.
bench-dash:
	$(GO) run ./cmd/duet-benchdiff -dashboard

## Regenerate the observability baseline: metrics snapshot of a fully
## exercised instrumented engine plus the scheduler's placement audit.
bench-obs:
	$(GO) run ./cmd/duet-bench -quick -obs BENCH_obs.json

## Regenerate the kernel benchmark baseline: the packed/blocked × pool/serial
## matrix over matmul, linear, and conv2d shapes, plus the fusion ablation.
## Quick scale, like every other committed baseline: the bench-diff gate
## re-runs the suite quick, and comparing across sampling scales injects a
## systematic offset into the geomean gate.
bench-kernels:
	$(GO) run ./cmd/duet-bench -quick -kernels BENCH_kernels.json

## Regenerate the serving benchmark baseline: serial Infer loop vs the
## concurrent server in unbatched, batched, and batched+pipelined modes,
## each under burst (capacity) and Poisson (tail latency) load.
bench-serve:
	$(GO) run ./cmd/duet-bench -quick -serve BENCH_serve.json

## Regenerate the cluster fault-tolerance baseline: the same request stream
## served fault-free and under the committed chaos schedule (primary crash +
## seeded message loss), with the bit-identical-outputs and replayable-trace
## invariants checked and recorded.
bench-cluster:
	$(GO) run ./cmd/duet-bench -quick -cluster BENCH_cluster.json

## Regenerate the cost-model/search baseline: measured vs predicted vs
## hybrid profile sources (makespan ratios, micro-benchmark reduction) and
## the wide search vs greedy correction, plus the regressor's train-set
## accuracy. The prediction-accuracy gate (sched/gate/mape_ok) rides into
## `make check` through bench-diff like every other suite.
bench-sched:
	$(GO) run ./cmd/duet-bench -quick -sched BENCH_sched.json

## Refit the committed latency-regressor artifact from noiseless zoo
## profiles and print its train-set accuracy.
costmodel:
	$(GO) run ./cmd/duet-profile -train COSTMODEL.json

## Fuzz the Relay parser for 30s.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/relay

clean:
	rm -f report.json trace.json
	rm -rf bin
