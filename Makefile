GO ?= go

.PHONY: all build test test-race test-short bench experiments quick-experiments report fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

## Regenerate every paper table/figure at paper scale (5000 runs).
experiments:
	$(GO) run ./cmd/duet-bench | tee experiments_full.txt

## Fast smoke pass over all experiments.
quick-experiments:
	$(GO) run ./cmd/duet-bench -quick

## Machine-readable report (for plotting / regression baselines).
report:
	$(GO) run ./cmd/duet-bench -json report.json

## Check a fresh run against a stored baseline report.
compare: report.json
	$(GO) run ./cmd/duet-bench -compare report.json

## Fuzz the Relay parser for 30s.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/relay

clean:
	rm -f report.json trace.json
