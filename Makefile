GO ?= go

.PHONY: all build check test test-race test-short bench experiments quick-experiments report fuzz clean

all: build check

build:
	$(GO) build ./...
	$(GO) vet ./...

## Full verification gate: vet plus the race-enabled test suite. The default
## `make` target runs this, so concurrency regressions (executor workers,
## health tracker, MPMC queue) cannot slip through a plain build.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

test: check
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

## Regenerate every paper table/figure at paper scale (5000 runs).
experiments:
	$(GO) run ./cmd/duet-bench | tee experiments_full.txt

## Fast smoke pass over all experiments.
quick-experiments:
	$(GO) run ./cmd/duet-bench -quick

## Machine-readable report (for plotting / regression baselines).
report:
	$(GO) run ./cmd/duet-bench -json report.json

## Check a fresh run against a stored baseline report.
compare: report.json
	$(GO) run ./cmd/duet-bench -compare report.json

## Fuzz the Relay parser for 30s.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/relay

clean:
	rm -f report.json trace.json
