// Command duet-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	duet-bench                  # run every experiment at paper scale
//	duet-bench -exp fig11       # run one experiment
//	duet-bench -quick           # reduced run counts (smoke test)
//	duet-bench -list            # list experiment IDs
//	duet-bench -runs 1000       # override the sample count
//	duet-bench -quick -serve BENCH_serve.json   # serving-layer benchmark
//	duet-bench -serve s.json -serve-qps 300 -serve-deadline-ms 50
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"duet/internal/benchdiff"
	"duet/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment ID to run (default: all)")
		quick     = flag.Bool("quick", false, "reduced run counts for a fast smoke pass")
		list      = flag.Bool("list", false, "list available experiments")
		runs      = flag.Int("runs", 0, "override latency sample count")
		seed      = flag.Int64("seed", 42, "noise/workload seed")
		jsonPath  = flag.String("json", "", "write a machine-readable report of the quantitative experiments to this file")
		obsPath   = flag.String("obs", "", "write the observability report (metrics snapshot + scheduler audit) to this file")
		kernPath  = flag.String("kernels", "", "write the tensor-kernel benchmark matrix (packed/blocked × pool/serial) to this file")
		servePath = flag.String("serve", "", "write the serving benchmark (serial vs unbatched vs batched vs pipelined) to this file")
		clusPath  = flag.String("cluster", "", "write the cluster fault-tolerance benchmark (fault-free vs chaos schedule) to this file")
		schedPath = flag.String("sched", "", "write the cost-model/search benchmark (measured vs predicted vs hybrid profiling, greedy vs wide search) to this file")

		clusNodes = flag.Int("cluster-nodes", 0, "cluster benchmark: serving-node count (0 = default 3)")
		clusReqs  = flag.Int("cluster-requests", 0, "cluster benchmark: request-stream length (0 = default 24)")
		clusQPS   = flag.Float64("cluster-qps", 0, "cluster benchmark: Poisson offered load (0 = burst)")
		clusLoss  = flag.Float64("cluster-loss", -1, "cluster benchmark: per-message loss probability (-1 = default 0.05)")

		serveReqs     = flag.Int("serve-requests", 0, "serving benchmark: requests per mode and load pattern (0 = default 48)")
		serveQPS      = flag.Float64("serve-qps", 0, "serving benchmark: Poisson offered load (0 = auto, 1.2x the serial rate)")
		serveDeadline = flag.Float64("serve-deadline-ms", 0, "serving benchmark: per-request SLA in virtual ms (0 = none)")
		serveReplicas = flag.Int("serve-replicas", 1, "serving benchmark: engine replica count")
		serveBatch    = flag.Int("serve-batch", 0, "serving benchmark: micro-batch row cap for the batched modes (0 = default 8)")
		serveWindow   = flag.Float64("serve-window-ms", 0, "serving benchmark: micro-batch accumulation window in virtual ms (0 = default 2)")
		compare       = flag.String("compare", "", "baseline report JSON to diff a fresh run against (exits 1 on regression)")
		tolerance     = flag.Float64("tolerance", 0.05, "relative change beyond which -compare flags a regression")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	cfg.Seed = *seed
	if *runs > 0 {
		cfg.Runs = *runs
	}

	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: %v\n", err)
			os.Exit(1)
		}
		var baseline experiments.Report
		if err := json.NewDecoder(f).Decode(&baseline); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "duet-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fresh, err := experiments.BuildReport(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: %v\n", err)
			os.Exit(1)
		}
		if regressions := experiments.CompareReports(&baseline, fresh, *tolerance, os.Stdout); regressions > 0 {
			os.Exit(1)
		}
		return
	}

	// Suite baselines (BENCH_*.json) go through benchdiff so every
	// regeneration appends to the file's bounded run-history section; the
	// wall-clock stamp lives here in the cmd layer, outside the
	// virtual-clock core.
	writeSuite := func(suiteName, path string, report any) {
		s, ok := benchdiff.SuiteByName(suiteName)
		if !ok {
			fmt.Fprintf(os.Stderr, "duet-bench: no benchdiff suite %q\n", suiteName)
			os.Exit(1)
		}
		label := "paper"
		if *quick {
			label = "quick"
		}
		if err := benchdiff.WriteBaseline(s, path, report, time.Now().Unix(), label); err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: %v\n", err)
			os.Exit(1)
		}
	}

	if *kernPath != "" {
		report, err := experiments.BuildKernelsReport(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: kernels report: %v\n", err)
			os.Exit(1)
		}
		writeSuite("kernels", *kernPath, report)
		fmt.Printf("wrote kernel benchmarks to %s\n", *kernPath)
		return
	}

	if *schedPath != "" {
		report, err := experiments.BuildSchedReport(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: sched report: %v\n", err)
			os.Exit(1)
		}
		writeSuite("sched", *schedPath, report)
		fmt.Printf("wrote cost-model/search report to %s\n", *schedPath)
		return
	}

	if *clusPath != "" {
		load := experiments.DefaultClusterLoad()
		if *clusNodes > 0 {
			load.Nodes = *clusNodes
		}
		if *clusReqs > 0 {
			load.Requests = *clusReqs
		}
		load.QPS = *clusQPS
		if *clusLoss >= 0 {
			load.LossProb = *clusLoss
		}
		report, err := experiments.BuildClusterReport(cfg, load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: cluster report: %v\n", err)
			os.Exit(1)
		}
		writeSuite("cluster", *clusPath, report)
		fmt.Println(report)
		fmt.Printf("wrote cluster report to %s\n", *clusPath)
		return
	}

	if *servePath != "" {
		load := experiments.DefaultServeLoad()
		if *serveReqs > 0 {
			load.Requests = *serveReqs
		}
		load.QPS = *serveQPS
		load.Deadline = *serveDeadline / 1e3
		load.Replicas = *serveReplicas
		if *serveBatch > 0 {
			load.MaxBatch = *serveBatch
		}
		if *serveWindow > 0 {
			load.Window = *serveWindow / 1e3
		}
		report, err := experiments.BuildServeReport(cfg, load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: serve report: %v\n", err)
			os.Exit(1)
		}
		writeSuite("serve", *servePath, report)
		fmt.Println(report)
		fmt.Printf("wrote serve report to %s\n", *servePath)
		return
	}

	if *obsPath != "" {
		report, err := experiments.BuildObsReport(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: obs report: %v\n", err)
			os.Exit(1)
		}
		writeSuite("obs", *obsPath, report)
		fmt.Printf("wrote obs report to %s\n", *obsPath)
		return
	}

	if *jsonPath != "" {
		report, err := experiments.BuildReport(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: report: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote report to %s\n", *jsonPath)
		return
	}

	run := func(e experiments.Experiment) {
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "duet-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}

	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "duet-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			run(e)
		}
		return
	}
	for _, e := range experiments.All() {
		run(e)
	}
}
