// Command duet-profile runs the compiler-aware profiler (§IV-B) over a
// model's subgraphs and prints each subgraph's per-device micro-benchmark
// time, I/O volume, and the effect of compiler fusion on the measurement.
//
// Usage:
//
//	duet-profile -model widedeep
//	duet-profile -model mtdnn -nofuse   # profile without fusion (ablation)
package main

import (
	"flag"
	"fmt"
	"os"

	"duet/internal/compiler"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/partition"
	"duet/internal/profile"
	"duet/internal/stats"
)

func main() {
	var (
		model    = flag.String("model", "widedeep", "widedeep | siamese | mtdnn | resnet18/34/50/101 | vgg16 | squeezenet | googlenet")
		seed     = flag.Int64("seed", 42, "profiling noise seed (0 = noiseless)")
		runs     = flag.Int("runs", 500, "micro-benchmark repetitions per device")
		noFuse   = flag.Bool("nofuse", false, "disable operator fusion (profiles framework-style kernels)")
		variants = flag.Bool("variants", false, "print the low-level schedule variant each kernel selects per device")
		out      = flag.String("out", "", "persist the profiling records as JSON to this file (reusable via duet-run -profiles)")
	)
	flag.Parse()

	g, err := buildGraph(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(2)
	}
	if err := compiler.InferShapes(g); err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}
	part, err := partition.Build(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}

	opts := compiler.DefaultOptions()
	if *noFuse {
		opts.Fuse = false
	}
	prof := &profile.Profiler{Platform: device.NewPlatform(*seed), Options: opts, Runs: *runs}
	records, err := prof.ProfileAll(g, part.Subgraphs())
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}

	fmt.Printf("model %s: %d phases, %d subgraphs (fusion=%v, %d runs/device)\n\n",
		g.Name, len(part.Phases), len(records), !*noFuse, *runs)
	fmt.Printf("%-4s %-6s %-12s %8s %10s %10s %9s %9s %7s\n",
		"idx", "phase", "kind", "kernels", "cpu (ms)", "gpu (ms)", "in (KB)", "out (KB)", "faster")
	subs := part.Subgraphs()
	for i, r := range records {
		ph := part.PhaseOf(i)
		fmt.Printf("%-4d %-6d %-12s %8d %10s %10s %9.1f %9.1f %7s  [%s]\n",
			i, ph, part.Phases[ph].Kind, r.Kernels,
			stats.Ms(r.Time[device.CPU]), stats.Ms(r.Time[device.GPU]),
			float64(r.InBytes)/1024, float64(r.OutBytes)/1024, r.Faster(), subs[i].Summary())
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-profile:", err)
			os.Exit(1)
		}
		if err := profile.SaveRecords(g.Name, records, f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "duet-profile:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote %d records to %s\n", len(records), *out)
	}

	if *variants {
		fmt.Printf("\nlow-level schedule variants (non-default only):\n")
		plat := device.NewPlatform(0)
		for i, sub := range subs {
			m, err := compiler.Compile(sub.Graph, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "duet-profile:", err)
				os.Exit(1)
			}
			cpuV := compiler.TunedVariants(m, plat.CPU)
			gpuV := compiler.TunedVariants(m, plat.GPU)
			for k := range m.Kernels {
				if cpuV[k] == "default" && gpuV[k] == "default" {
					continue
				}
				fmt.Printf("  sub%-3d %-28s cpu=%-11s gpu=%s\n", i, m.Kernels[k].Name, cpuV[k], gpuV[k])
			}
		}
	}
}

func buildGraph(name string) (*graph.Graph, error) {
	switch name {
	case "widedeep":
		return models.WideDeep(models.DefaultWideDeep())
	case "siamese":
		return models.Siamese(models.DefaultSiamese())
	case "mtdnn":
		return models.MTDNN(models.DefaultMTDNN())
	case "resnet18", "resnet34", "resnet50", "resnet101":
		var depth int
		fmt.Sscanf(name, "resnet%d", &depth)
		return models.ResNet(models.DefaultResNet(depth))
	case "vgg16":
		return models.VGG(models.DefaultVGG())
	case "squeezenet":
		return models.SqueezeNet(models.DefaultSqueezeNet())
	case "googlenet":
		return models.GoogLeNet(models.DefaultGoogLeNet())
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}
