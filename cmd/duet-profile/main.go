// Command duet-profile runs the compiler-aware profiler (§IV-B) over a
// model's subgraphs and prints each subgraph's per-device micro-benchmark
// time, I/O volume, and the effect of compiler fusion on the measurement.
//
// Usage:
//
//	duet-profile -model widedeep
//	duet-profile -model mtdnn -nofuse   # profile without fusion (ablation)
//	duet-profile -model vgg16 -fusion legacy   # dense-epilogue fusion only
//	duet-profile -train COSTMODEL.json  # fit the latency regressor from zoo profiles
//	duet-profile -model googlenet -eval COSTMODEL.json   # score it on one model
package main

import (
	"flag"
	"fmt"
	"os"

	"duet/internal/compiler"
	"duet/internal/costmodel"
	"duet/internal/device"
	"duet/internal/experiments"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/partition"
	"duet/internal/profile"
	"duet/internal/stats"
)

func main() {
	var (
		model    = flag.String("model", "widedeep", "widedeep | siamese | mtdnn | resnet18/34/50/101 | vgg16 | squeezenet | googlenet")
		seed     = flag.Int64("seed", 42, "profiling noise seed (0 = noiseless)")
		runs     = flag.Int("runs", 500, "micro-benchmark repetitions per device")
		noFuse   = flag.Bool("nofuse", false, "disable operator fusion (profiles framework-style kernels)")
		fusion   = flag.String("fusion", "", "fusion level: off | legacy | unconstrained (overrides -nofuse)")
		variants = flag.Bool("variants", false, "print the low-level schedule variant each kernel selects per device")
		out      = flag.String("out", "", "persist the profiling records as JSON to this file (reusable via duet-run -profiles)")
		train    = flag.String("train", "", "fit the per-device latency regressor from noiseless zoo profiles and save it to this file")
		eval     = flag.String("eval", "", "load a saved cost model and score its predictions against -model's measured profiles")
	)
	flag.Parse()

	if *train != "" {
		trainModel(*train)
		return
	}

	g, err := buildGraph(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(2)
	}
	if err := compiler.InferShapes(g); err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}
	part, err := partition.Build(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}

	opts := compiler.DefaultOptions()
	if *noFuse {
		opts.Fuse = false
	}
	if *fusion != "" {
		lvl, err := compiler.ParseFusionLevel(*fusion)
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-profile:", err)
			os.Exit(2)
		}
		opts.Fusion = lvl
	}
	prof := &profile.Profiler{Platform: device.NewPlatform(*seed), Options: opts, Runs: *runs}
	records, err := prof.ProfileAll(g, part.Subgraphs())
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}

	fmt.Printf("model %s: %d phases, %d subgraphs (fusion=%v, %d runs/device)\n\n",
		g.Name, len(part.Phases), len(records), !*noFuse, *runs)
	fmt.Printf("%-4s %-6s %-12s %8s %10s %10s %9s %9s %7s\n",
		"idx", "phase", "kind", "kernels", "cpu (ms)", "gpu (ms)", "in (KB)", "out (KB)", "faster")
	subs := part.Subgraphs()
	for i, r := range records {
		ph := part.PhaseOf(i)
		fmt.Printf("%-4d %-6d %-12s %8d %10s %10s %9.1f %9.1f %7s  [%s]\n",
			i, ph, part.Phases[ph].Kind, r.Kernels,
			stats.Ms(r.Time[device.CPU]), stats.Ms(r.Time[device.GPU]),
			float64(r.InBytes)/1024, float64(r.OutBytes)/1024, r.Faster(), subs[i].Summary())
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-profile:", err)
			os.Exit(1)
		}
		if err := profile.SaveRecords(g.Name, records, f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "duet-profile:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote %d records to %s\n", len(records), *out)
	}

	if *eval != "" {
		evalModel(*eval, part, opts, records)
	}

	if *variants {
		fmt.Printf("\nlow-level schedule variants (non-default only):\n")
		plat := device.NewPlatform(0)
		for i, sub := range subs {
			m, err := compiler.Compile(sub.Graph, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "duet-profile:", err)
				os.Exit(1)
			}
			cpuV := compiler.TunedVariants(m, plat.CPU)
			gpuV := compiler.TunedVariants(m, plat.GPU)
			for k := range m.Kernels {
				if cpuV[k] == "default" && gpuV[k] == "default" {
					continue
				}
				fmt.Printf("  sub%-3d %-28s cpu=%-11s gpu=%s\n", i, m.Kernels[k].Name, cpuV[k], gpuV[k])
			}
		}
	}
}

// trainModel fits the latency regressor from noiseless profiles of the
// benchmark zoo and writes the committed COSTMODEL.json artifact.
func trainModel(path string) {
	m, samples, err := experiments.TrainZooModel(experiments.Quick())
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}
	acc := m.Eval(samples)
	fmt.Printf("trained on %d samples: cpu MAPE %.4f (p90 %.4f), gpu MAPE %.4f (p90 %.4f)\n",
		len(samples), acc.MAPE[device.CPU], acc.P90APE[device.CPU],
		acc.MAPE[device.GPU], acc.P90APE[device.GPU])
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote cost model to %s\n", path)
}

// evalModel loads a saved cost model and scores it against the measured
// records just printed: per-device MAPE plus the worst per-subgraph error.
func evalModel(path string, part *partition.Partition,
	opts compiler.Options, records []profile.Record) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}
	m, err := costmodel.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}
	samples, err := profile.CostSamples(part, opts, records)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-profile:", err)
		os.Exit(1)
	}
	acc := m.Eval(samples)
	fmt.Printf("\ncost model %s vs %d measured subgraphs:\n", path, len(samples))
	fmt.Printf("  cpu MAPE %.4f (p90 %.4f)   gpu MAPE %.4f (p90 %.4f)\n",
		acc.MAPE[device.CPU], acc.P90APE[device.CPU],
		acc.MAPE[device.GPU], acc.P90APE[device.GPU])
	worst, werr := -1, 0.0
	for i, ape := range acc.APE {
		if e := ape[device.CPU] + ape[device.GPU]; e > werr {
			worst, werr = i, e
		}
	}
	if worst >= 0 {
		fmt.Printf("  worst subgraph %d: cpu APE %.4f, gpu APE %.4f\n",
			worst, acc.APE[worst][device.CPU], acc.APE[worst][device.GPU])
	}
}

func buildGraph(name string) (*graph.Graph, error) {
	switch name {
	case "widedeep":
		return models.WideDeep(models.DefaultWideDeep())
	case "siamese":
		return models.Siamese(models.DefaultSiamese())
	case "mtdnn":
		return models.MTDNN(models.DefaultMTDNN())
	case "resnet18", "resnet34", "resnet50", "resnet101":
		var depth int
		fmt.Sscanf(name, "resnet%d", &depth)
		return models.ResNet(models.DefaultResNet(depth))
	case "vgg16":
		return models.VGG(models.DefaultVGG())
	case "squeezenet":
		return models.SqueezeNet(models.DefaultSqueezeNet())
	case "googlenet":
		return models.GoogLeNet(models.DefaultGoogLeNet())
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}
