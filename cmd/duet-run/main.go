// Command duet-run builds a DUET engine for one model, executes a real
// inference on the chosen heterogeneous placement, and reports the
// placement decisions, latency statistics and execution timeline.
//
// Usage:
//
//	duet-run -model widedeep
//	duet-run -model siamese -runs 2000 -seed 7
//	duet-run -model resnet50 -timeline
//	duet-run -model widedeep -small -cluster -cluster-crash -2 -cluster-loss 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"duet/internal/core"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/obs"
	"duet/internal/profile"
	"duet/internal/serve"
	"duet/internal/stats"
	"duet/internal/tensor"
	"duet/internal/verify"
	"duet/internal/workload"
)

func main() {
	var (
		model    = flag.String("model", "widedeep", "widedeep | siamese | mtdnn | resnet18/34/50/101 | vgg16 | squeezenet | googlenet")
		seed     = flag.Int64("seed", 42, "noise/workload seed")
		runs     = flag.Int("runs", 1000, "latency samples")
		timeline = flag.Bool("timeline", false, "print the execution timeline of one inference")
		small    = flag.Bool("small", false, "use a reduced model (fast real-value execution)")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON of one inference to this file")
		dot      = flag.String("dot", "", "write the model graph (with placement labels) in Graphviz dot form to this file")
		parallel = flag.Bool("parallel", false, "execute tensor math with per-device worker goroutines (InferParallel)")
		profiles = flag.String("profiles", "", "reuse persisted profiling records (from duet-profile -out) instead of re-profiling")
		metrics  = flag.String("metrics", "", "print collected metrics after the run: 'prom' (Prometheus text format) or 'json' (snapshot)")
		audit    = flag.Bool("audit", false, "print the scheduler's placement audit (device choices, swap sequence, predicted vs measured critical path)")
		lint     = flag.Bool("lint", false, "run the static verification passes over the built engine and report per-pass results instead of measuring; with -dot, failing nodes are marked red; exit 1 on findings")

		serveMode       = flag.Bool("serve", false, "serve a request stream through the concurrent serving layer (replicas + micro-batching + pipelining) instead of measuring single inferences")
		serveReqs       = flag.Int("serve-requests", 32, "serve: request count")
		serveQPS        = flag.Float64("serve-qps", 0, "serve: Poisson offered load in req/s (0 = all-at-once burst)")
		serveDeadlineMS = flag.Float64("serve-deadline-ms", 0, "serve: per-request SLA in virtual ms (0 = none; enables admission control and shedding)")
		serveReplicas   = flag.Int("serve-replicas", 1, "serve: engine replica count")
		serveBatch      = flag.Int("serve-batch", 8, "serve: micro-batch row cap (1 disables coalescing)")
		serveWindowMS   = flag.Float64("serve-window-ms", 2, "serve: micro-batch accumulation window in virtual ms")

		clusterMode     = flag.Bool("cluster", false, "serve the request stream through the multi-node fabric (consistent-hash router, failover, chaos injection) instead of one server")
		clusterNodes    = flag.Int("cluster-nodes", 3, "cluster: serving-node count")
		clusterReqs     = flag.Int("cluster-requests", 24, "cluster: request count")
		clusterQPS      = flag.Float64("cluster-qps", 0, "cluster: Poisson offered load in req/s (0 = all-at-once burst)")
		clusterSessions = flag.Int("cluster-sessions", 4, "cluster: sticky-session count the stream rotates through")
		clusterCrash    = flag.Int("cluster-crash", -1, "cluster: node to crash (-1 = none, -2 = the first session's primary)")
		clusterCrashAt  = flag.Float64("cluster-crash-at-ms", 2, "cluster: crash time in virtual ms")
		clusterCrashFor = flag.Float64("cluster-crash-for-ms", 0, "cluster: crash duration in virtual ms (0 = stays down)")
		clusterLoss     = flag.Float64("cluster-loss", 0, "cluster: per-message loss probability (seeded, deterministic)")
		clusterHedgeMS  = flag.Float64("cluster-hedge-ms", 0, "cluster: hedge a straggling request after this many virtual ms (0 = off)")
		clusterTrace    = flag.Bool("cluster-trace", false, "cluster: print the replayable event trace")
	)
	flag.Parse()

	g, inputs, err := buildModel(*model, *seed, *small)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-run:", err)
		os.Exit(2)
	}

	cfg := core.DefaultConfig(*seed)
	if *profiles != "" {
		f, err := os.Open(*profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run:", err)
			os.Exit(1)
		}
		records, err := profile.LoadRecords(g.Name, -1, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run:", err)
			os.Exit(1)
		}
		cfg.Records = records
		fmt.Printf("reusing %d persisted profile records from %s\n", len(records), *profiles)
	}
	if *lint {
		// Lint is the reporting path: let the build succeed and report the
		// findings pass-by-pass here instead of failing inside Build.
		cfg.DisableVerify = true
	}
	engine, err := core.Build(g, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-run:", err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *metrics != "" {
		if *metrics != "prom" && *metrics != "json" {
			fmt.Fprintf(os.Stderr, "duet-run: -metrics must be 'prom' or 'json', got %q\n", *metrics)
			os.Exit(2)
		}
		reg = obs.NewRegistry()
		engine.Instrument(reg)
	}

	fmt.Printf("model %s: %d nodes, %.1fM params, %d subgraphs, placement %s (fellback=%v)\n",
		g.Name, g.Len(), float64(models.ParamCount(g))/1e6, engine.Runtime.NumSubgraphs(), engine.Placement, engine.FellBack)
	fmt.Println("\nplacement decisions (Table II style):")
	for _, row := range engine.PlacementTable() {
		fmt.Println(" ", row)
	}

	if *lint {
		os.Exit(runLint(engine, g, *dot))
	}

	if *clusterMode {
		_, inputsFor := serveSetup(*model, *seed, *small)
		o := clusterOpts{
			nodes: *clusterNodes, requests: *clusterReqs, sessions: *clusterSessions,
			qps: *clusterQPS, crashNode: *clusterCrash,
			crashAtMS: *clusterCrashAt, crashForMS: *clusterCrashFor,
			lossProb: *clusterLoss, hedgeMS: *clusterHedgeMS, trace: *clusterTrace,
		}
		if err := runCluster(engine, reg, *seed, inputs, inputsFor, o); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: cluster:", err)
			os.Exit(1)
		}
		if reg != nil {
			fmt.Println("\nmetrics:")
			var err error
			if *metrics == "json" {
				err = reg.WriteJSON(os.Stdout)
			} else {
				err = reg.WritePrometheus(os.Stdout)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "duet-run: metrics:", err)
				os.Exit(1)
			}
		}
		return
	}

	if *serveMode {
		o := serveOpts{
			requests: *serveReqs, replicas: *serveReplicas, maxBatch: *serveBatch,
			qps: *serveQPS, windowMS: *serveWindowMS, deadlineMS: *serveDeadlineMS,
		}
		if err := runServe(engine, reg, *model, *seed, *small, inputs, o); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: serve:", err)
			os.Exit(1)
		}
		if reg != nil {
			fmt.Println("\nmetrics:")
			var err error
			if *metrics == "json" {
				err = reg.WriteJSON(os.Stdout)
			} else {
				err = reg.WritePrometheus(os.Stdout)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "duet-run: metrics:", err)
				os.Exit(1)
			}
		}
		return
	}

	duet, err := engine.Measure(*runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-run:", err)
		os.Exit(1)
	}
	cpu, _ := engine.MeasureUniform(device.CPU, *runs)
	gpu, _ := engine.MeasureUniform(device.GPU, *runs)
	sDuet, sCPU, sGPU := stats.Summarize(duet), stats.Summarize(cpu), stats.Summarize(gpu)
	fmt.Printf("\nlatency over %d runs:\n  DUET     %s\n  TVM-CPU  %s\n  TVM-GPU  %s\n  speedup: %.2fx vs GPU, %.2fx vs CPU\n",
		*runs, sDuet, sCPU, sGPU, sGPU.Mean/sDuet.Mean, sCPU.Mean/sDuet.Mean)

	infer := engine.Infer
	if *parallel {
		infer = engine.InferParallel
	}
	res, err := infer(inputs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-run: inference:", err)
		os.Exit(1)
	}
	fmt.Printf("\nreal inference: latency %sms, %d output(s):\n", stats.Ms(res.Latency), len(res.Outputs))
	for i, o := range res.Outputs {
		fmt.Printf("  out[%d] %v\n", i, o)
	}
	if *timeline {
		fmt.Println("\ntimeline:")
		for _, s := range res.Timeline {
			fmt.Printf("  %-9s %9sms..%9sms  %s\n", s.Device, stats.Ms(s.Start), stats.Ms(s.End), s.Label)
		}
	}
	if *trace != "" {
		data, err := res.ChromeTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: trace:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*trace, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing)\n", *trace)
	}

	mem, err := engine.Runtime.Memory(engine.Placement)
	if err == nil {
		fmt.Printf("\nmemory footprint: %s\n", mem)
	}

	if *audit {
		a, err := engine.ScheduleAudit()
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: audit:", err)
			os.Exit(1)
		}
		fmt.Println()
		if err := a.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: audit:", err)
			os.Exit(1)
		}
	}

	if reg != nil {
		fmt.Println("\nmetrics:")
		var err error
		if *metrics == "json" {
			err = reg.WriteJSON(os.Stdout)
		} else {
			err = reg.WritePrometheus(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: metrics:", err)
			os.Exit(1)
		}
	}

	if *dot != "" {
		labels := map[graph.NodeID]string{}
		for i, sub := range engine.Runtime.Subgraphs() {
			for _, id := range sub.Members {
				labels[id] = engine.Placement[i].String()
			}
		}
		if err := os.WriteFile(*dot, []byte(g.DOT(labels)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: dot:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote placement-labelled graph to %s\n", *dot)
	}
}

// runLint runs every static verification pass over the built engine, prints
// a per-pass verdict with the findings, replays the scheduler's audit trail,
// and (when dotPath is set) writes the graph with failing nodes filled red.
// Returns the process exit code: 0 clean, 1 findings.
func runLint(engine *core.Engine, g *graph.Graph, dotPath string) int {
	findings := engine.Verify()
	byPass := map[string][]verify.Finding{}
	for _, f := range findings {
		byPass[f.Pass] = append(byPass[f.Pass], f)
	}
	fmt.Println("\nstatic verification:")
	passes := []string{
		verify.PassGraph, verify.PassPartition, verify.PassProfiles,
		verify.PassPlacement, verify.PassSchedule, verify.PassLiveness,
		verify.PassRelease,
	}
	for _, pass := range passes {
		fs := byPass[pass]
		if len(fs) == 0 {
			fmt.Printf("  %-16s ok\n", pass)
			continue
		}
		fmt.Printf("  %-16s %d finding(s)\n", pass, len(fs))
		for _, f := range fs {
			fmt.Printf("    %s\n", f)
		}
	}

	// Audit replay: re-derive the scheduler's decision trail and verify it
	// against the partition and profiles.
	auditFindings := 0
	if a, err := engine.ScheduleAudit(); err != nil {
		fmt.Printf("  %-16s skipped: %v\n", verify.PassAudit, err)
	} else if err := a.Verify(engine.Partition, engine.Profiles); err != nil {
		auditFindings++
		fmt.Printf("  %-16s FAIL: %v\n", verify.PassAudit, err)
	} else {
		fmt.Printf("  %-16s ok\n", verify.PassAudit)
	}

	if dotPath != "" {
		labels := map[graph.NodeID]string{}
		for i, sub := range engine.Runtime.Subgraphs() {
			for _, id := range sub.Members {
				labels[id] = engine.Placement[i].String()
			}
		}
		styles := map[graph.NodeID]verifyDotStyle{}
		for _, f := range findings {
			if f.Node < 0 {
				continue
			}
			st := styles[f.Node]
			st.Color = "red"
			if st.Note == "" {
				st.Note = f.Pass
			} else {
				st.Note += "," + f.Pass
			}
			styles[f.Node] = st
		}
		dotStyles := map[graph.NodeID]graph.DotStyle{}
		for id, st := range styles {
			dotStyles[id] = graph.DotStyle{Color: st.Color, Note: "FAIL: " + st.Note}
		}
		if err := os.WriteFile(dotPath, []byte(g.DOTStyled(labels, dotStyles)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: dot:", err)
			return 1
		}
		fmt.Printf("\nwrote verification-annotated graph to %s (%d node(s) marked)\n", dotPath, len(dotStyles))
	}

	if len(findings)+auditFindings > 0 {
		fmt.Printf("\nlint: %d finding(s)\n", len(findings)+auditFindings)
		return 1
	}
	fmt.Println("\nlint: all passes clean")
	return 0
}

// verifyDotStyle accumulates per-node annotation before conversion to
// graph.DotStyle (several passes can flag the same node).
type verifyDotStyle struct {
	Color string
	Note  string
}

type serveOpts struct {
	requests, replicas, maxBatch int
	qps, windowMS, deadlineMS    float64
}

// runServe drives the built engine through the concurrent serving layer:
// an open-loop (or burst) request stream, micro-batching, and pipelined
// cross-device execution, reporting throughput, tail latency, and
// per-replica device utilization.
func runServe(engine *core.Engine, reg *obs.Registry, model string, seed int64, small bool, fallback map[string]*tensor.Tensor, o serveOpts) error {
	batchGraph, inputsFor := serveSetup(model, seed, small)
	if inputsFor == nil {
		// No per-request workload generator for this model: replay the same
		// input set each request (throughput numbers stay meaningful; outputs
		// are identical across requests).
		inputsFor = func(int) map[string]*tensor.Tensor { return fallback }
	}
	if batchGraph == nil && o.maxBatch > 1 {
		fmt.Printf("note: %s has no batch-resizing builder wired; serving unbatched\n", model)
		o.maxBatch = 1
	}
	srv, err := serve.New(serve.Config{
		Engine:     engine,
		BatchGraph: batchGraph,
		Replicas:   o.replicas,
		MaxBatch:   o.maxBatch,
		Window:     o.windowMS / 1e3,
		Pipelined:  true,
		Admission:  o.deadlineMS > 0,
		Seed:       seed,
		Registry:   reg,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	spec := serve.LoadSpec{
		Requests: o.requests,
		QPS:      o.qps,
		Burst:    o.qps <= 0,
		Deadline: o.deadlineMS / 1e3,
		Seed:     seed + 3,
		Inputs:   inputsFor,
	}
	rep, _, err := srv.Run(serve.OpenLoop(spec))
	if err != nil {
		return err
	}
	pattern := "burst"
	if o.qps > 0 {
		pattern = fmt.Sprintf("poisson @ %.0f req/s", o.qps)
	}
	fmt.Printf("\nserving %d requests (%s, max batch %d, window %.1fms, %d replica(s)):\n  %s\n",
		o.requests, pattern, o.maxBatch, o.windowMS, o.replicas, rep)
	for i, r := range rep.Replicas {
		fmt.Printf("  replica %d: cpu busy %.3fms (%.0f%% util), gpu busy %.3fms (%.0f%% util)\n",
			i, float64(r.CPUBusy)*1e3, r.CPUUtil*100, float64(r.GPUBusy)*1e3, r.GPUUtil*100)
	}
	return nil
}

// serveSetup wires the per-model pieces the serving layer needs beyond the
// engine itself: the batch-resizing graph builder (weights bit-identical
// across batch sizes — builders derive them from the model seed alone) and
// a deterministic per-request input stream.
func serveSetup(name string, seed int64, small bool) (func(int) (*graph.Graph, error), func(int) map[string]*tensor.Tensor) {
	switch {
	case name == "widedeep":
		cfg := models.DefaultWideDeep()
		if small {
			cfg.ImageSize, cfg.SeqLen, cfg.CNNDepth = 64, 16, 18
		}
		return func(b int) (*graph.Graph, error) {
				c := cfg
				c.Batch = b
				return models.WideDeep(c)
			},
			workload.WideDeepStream(cfg, seed+1000)
	case name == "siamese":
		cfg := models.DefaultSiamese()
		if small {
			cfg.SeqLen = 16
			cfg.Hidden = 64
		}
		return func(b int) (*graph.Graph, error) {
				c := cfg
				c.Batch = b
				return models.Siamese(c)
			},
			func(i int) map[string]*tensor.Tensor { return workload.SiameseInputs(cfg, seed+1000+int64(i)) }
	case name == "mtdnn":
		cfg := models.DefaultMTDNN()
		if small {
			cfg.SeqLen, cfg.Layers, cfg.ModelDim, cfg.FFNDim, cfg.Heads = 16, 2, 128, 256, 4
		}
		return func(b int) (*graph.Graph, error) {
				c := cfg
				c.Batch = b
				return models.MTDNN(c)
			},
			func(i int) map[string]*tensor.Tensor { return workload.MTDNNInputs(cfg, seed+1000+int64(i)) }
	case strings.HasPrefix(name, "resnet"):
		var depth int
		if _, err := fmt.Sscanf(name, "resnet%d", &depth); err != nil {
			return nil, nil
		}
		cfg := models.DefaultResNet(depth)
		if small {
			cfg.ImageSize = 64
		}
		return func(b int) (*graph.Graph, error) {
				c := cfg
				c.Batch = b
				return models.ResNet(c)
			},
			func(i int) map[string]*tensor.Tensor { return workload.ResNetInputs(cfg, seed+1000+int64(i)) }
	default:
		return nil, nil
	}
}

func buildModel(name string, seed int64, small bool) (*graph.Graph, map[string]*tensor.Tensor, error) {
	switch {
	case name == "widedeep":
		cfg := models.DefaultWideDeep()
		if small {
			cfg.ImageSize = 64
			cfg.SeqLen = 16
			cfg.CNNDepth = 18
		}
		g, err := models.WideDeep(cfg)
		return g, workload.WideDeepInputs(cfg, seed), err
	case name == "siamese":
		cfg := models.DefaultSiamese()
		if small {
			cfg.SeqLen = 16
			cfg.Hidden = 64
		}
		g, err := models.Siamese(cfg)
		return g, workload.SiameseInputs(cfg, seed), err
	case name == "mtdnn":
		cfg := models.DefaultMTDNN()
		if small {
			cfg.SeqLen = 16
			cfg.Layers = 2
			cfg.ModelDim = 128
			cfg.FFNDim = 256
			cfg.Heads = 4
		}
		g, err := models.MTDNN(cfg)
		return g, workload.MTDNNInputs(cfg, seed), err
	case name == "vgg16":
		cfg := models.DefaultVGG()
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.VGG(cfg)
		return g, map[string]*tensor.Tensor{"image": tensor.Full(0.1, cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)}, err
	case name == "googlenet":
		cfg := models.DefaultGoogLeNet()
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.GoogLeNet(cfg)
		return g, map[string]*tensor.Tensor{"image": tensor.Full(0.1, cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)}, err
	case name == "squeezenet":
		cfg := models.DefaultSqueezeNet()
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.SqueezeNet(cfg)
		return g, map[string]*tensor.Tensor{"image": tensor.Full(0.1, cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)}, err
	case strings.HasPrefix(name, "resnet"):
		var depth int
		if _, err := fmt.Sscanf(name, "resnet%d", &depth); err != nil {
			return nil, nil, fmt.Errorf("bad model name %q", name)
		}
		cfg := models.DefaultResNet(depth)
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.ResNet(cfg)
		return g, workload.ResNetInputs(cfg, seed), err
	default:
		return nil, nil, fmt.Errorf("unknown model %q", name)
	}
}
