// Command duet-run builds a DUET engine for one model, executes a real
// inference on the chosen heterogeneous placement, and reports the
// placement decisions, latency statistics and execution timeline.
//
// Usage:
//
//	duet-run -model widedeep
//	duet-run -model siamese -runs 2000 -seed 7
//	duet-run -model resnet50 -timeline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"duet/internal/core"
	"duet/internal/device"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/obs"
	"duet/internal/profile"
	"duet/internal/stats"
	"duet/internal/tensor"
	"duet/internal/workload"
)

func main() {
	var (
		model    = flag.String("model", "widedeep", "widedeep | siamese | mtdnn | resnet18/34/50/101 | vgg16 | squeezenet | googlenet")
		seed     = flag.Int64("seed", 42, "noise/workload seed")
		runs     = flag.Int("runs", 1000, "latency samples")
		timeline = flag.Bool("timeline", false, "print the execution timeline of one inference")
		small    = flag.Bool("small", false, "use a reduced model (fast real-value execution)")
		trace    = flag.String("trace", "", "write a Chrome trace-event JSON of one inference to this file")
		dot      = flag.String("dot", "", "write the model graph (with placement labels) in Graphviz dot form to this file")
		parallel = flag.Bool("parallel", false, "execute tensor math with per-device worker goroutines (InferParallel)")
		profiles = flag.String("profiles", "", "reuse persisted profiling records (from duet-profile -out) instead of re-profiling")
		metrics  = flag.String("metrics", "", "print collected metrics after the run: 'prom' (Prometheus text format) or 'json' (snapshot)")
		audit    = flag.Bool("audit", false, "print the scheduler's placement audit (device choices, swap sequence, predicted vs measured critical path)")
	)
	flag.Parse()

	g, inputs, err := buildModel(*model, *seed, *small)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-run:", err)
		os.Exit(2)
	}

	cfg := core.DefaultConfig(*seed)
	if *profiles != "" {
		f, err := os.Open(*profiles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run:", err)
			os.Exit(1)
		}
		records, err := profile.LoadRecords(g.Name, -1, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run:", err)
			os.Exit(1)
		}
		cfg.Records = records
		fmt.Printf("reusing %d persisted profile records from %s\n", len(records), *profiles)
	}
	engine, err := core.Build(g, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-run:", err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *metrics != "" {
		if *metrics != "prom" && *metrics != "json" {
			fmt.Fprintf(os.Stderr, "duet-run: -metrics must be 'prom' or 'json', got %q\n", *metrics)
			os.Exit(2)
		}
		reg = obs.NewRegistry()
		engine.Instrument(reg)
	}

	fmt.Printf("model %s: %d nodes, %.1fM params, %d subgraphs, placement %s (fellback=%v)\n",
		g.Name, g.Len(), float64(models.ParamCount(g))/1e6, engine.Runtime.NumSubgraphs(), engine.Placement, engine.FellBack)
	fmt.Println("\nplacement decisions (Table II style):")
	for _, row := range engine.PlacementTable() {
		fmt.Println(" ", row)
	}

	duet, err := engine.Measure(*runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-run:", err)
		os.Exit(1)
	}
	cpu, _ := engine.MeasureUniform(device.CPU, *runs)
	gpu, _ := engine.MeasureUniform(device.GPU, *runs)
	sDuet, sCPU, sGPU := stats.Summarize(duet), stats.Summarize(cpu), stats.Summarize(gpu)
	fmt.Printf("\nlatency over %d runs:\n  DUET     %s\n  TVM-CPU  %s\n  TVM-GPU  %s\n  speedup: %.2fx vs GPU, %.2fx vs CPU\n",
		*runs, sDuet, sCPU, sGPU, sGPU.Mean/sDuet.Mean, sCPU.Mean/sDuet.Mean)

	infer := engine.Infer
	if *parallel {
		infer = engine.InferParallel
	}
	res, err := infer(inputs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-run: inference:", err)
		os.Exit(1)
	}
	fmt.Printf("\nreal inference: latency %sms, %d output(s):\n", stats.Ms(res.Latency), len(res.Outputs))
	for i, o := range res.Outputs {
		fmt.Printf("  out[%d] %v\n", i, o)
	}
	if *timeline {
		fmt.Println("\ntimeline:")
		for _, s := range res.Timeline {
			fmt.Printf("  %-9s %9sms..%9sms  %s\n", s.Device, stats.Ms(s.Start), stats.Ms(s.End), s.Label)
		}
	}
	if *trace != "" {
		data, err := res.ChromeTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: trace:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*trace, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing)\n", *trace)
	}

	mem, err := engine.Runtime.Memory(engine.Placement)
	if err == nil {
		fmt.Printf("\nmemory footprint: %s\n", mem)
	}

	if *audit {
		a, err := engine.ScheduleAudit()
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: audit:", err)
			os.Exit(1)
		}
		fmt.Println()
		if err := a.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: audit:", err)
			os.Exit(1)
		}
	}

	if reg != nil {
		fmt.Println("\nmetrics:")
		var err error
		if *metrics == "json" {
			err = reg.WriteJSON(os.Stdout)
		} else {
			err = reg.WritePrometheus(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: metrics:", err)
			os.Exit(1)
		}
	}

	if *dot != "" {
		labels := map[graph.NodeID]string{}
		for i, sub := range engine.Runtime.Subgraphs() {
			for _, id := range sub.Members {
				labels[id] = engine.Placement[i].String()
			}
		}
		if err := os.WriteFile(*dot, []byte(g.DOT(labels)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "duet-run: dot:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote placement-labelled graph to %s\n", *dot)
	}
}

func buildModel(name string, seed int64, small bool) (*graph.Graph, map[string]*tensor.Tensor, error) {
	switch {
	case name == "widedeep":
		cfg := models.DefaultWideDeep()
		if small {
			cfg.ImageSize = 64
			cfg.SeqLen = 16
			cfg.CNNDepth = 18
		}
		g, err := models.WideDeep(cfg)
		return g, workload.WideDeepInputs(cfg, seed), err
	case name == "siamese":
		cfg := models.DefaultSiamese()
		if small {
			cfg.SeqLen = 16
			cfg.Hidden = 64
		}
		g, err := models.Siamese(cfg)
		return g, workload.SiameseInputs(cfg, seed), err
	case name == "mtdnn":
		cfg := models.DefaultMTDNN()
		if small {
			cfg.SeqLen = 16
			cfg.Layers = 2
			cfg.ModelDim = 128
			cfg.FFNDim = 256
			cfg.Heads = 4
		}
		g, err := models.MTDNN(cfg)
		return g, workload.MTDNNInputs(cfg, seed), err
	case name == "vgg16":
		cfg := models.DefaultVGG()
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.VGG(cfg)
		return g, map[string]*tensor.Tensor{"image": tensor.Full(0.1, cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)}, err
	case name == "googlenet":
		cfg := models.DefaultGoogLeNet()
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.GoogLeNet(cfg)
		return g, map[string]*tensor.Tensor{"image": tensor.Full(0.1, cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)}, err
	case name == "squeezenet":
		cfg := models.DefaultSqueezeNet()
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.SqueezeNet(cfg)
		return g, map[string]*tensor.Tensor{"image": tensor.Full(0.1, cfg.Batch, 3, cfg.ImageSize, cfg.ImageSize)}, err
	case strings.HasPrefix(name, "resnet"):
		var depth int
		if _, err := fmt.Sscanf(name, "resnet%d", &depth); err != nil {
			return nil, nil, fmt.Errorf("bad model name %q", name)
		}
		cfg := models.DefaultResNet(depth)
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.ResNet(cfg)
		return g, workload.ResNetInputs(cfg, seed), err
	default:
		return nil, nil, fmt.Errorf("unknown model %q", name)
	}
}
