package main

import (
	"fmt"

	"duet/internal/cluster"
	"duet/internal/core"
	"duet/internal/faults"
	"duet/internal/obs"
	"duet/internal/serve"
	"duet/internal/tensor"
	"duet/internal/vclock"
)

type clusterOpts struct {
	nodes, requests, sessions int
	qps                       float64
	crashNode                 int // -1 none; -2 auto (first session's primary)
	crashAtMS, crashForMS     float64
	lossProb                  float64
	hedgeMS                   float64
	trace                     bool
}

// runCluster boots an in-process serving fabric over the built engine —
// every node a serve.Server behind the router's message front door — drives
// an open-loop stream through it under the requested fault schedule, and
// prints the report (optionally the full replayable event trace).
func runCluster(engine *core.Engine, reg *obs.Registry, seed int64, fallback map[string]*tensor.Tensor, inputsFor func(int) map[string]*tensor.Tensor, o clusterOpts) error {
	if o.nodes < 1 {
		o.nodes = 3
	}
	if o.requests < 1 {
		o.requests = 24
	}
	if o.sessions < 1 {
		o.sessions = 4
	}
	if inputsFor == nil {
		inputsFor = func(int) map[string]*tensor.Tensor { return fallback }
	}

	servers := make([]*serve.Server, o.nodes)
	for i := range servers {
		srv, err := serve.New(serve.Config{Engine: engine, QueueCap: 4 * o.requests, Seed: seed})
		if err != nil {
			return err
		}
		defer srv.Close()
		servers[i] = srv
	}

	// The routing table is needed before the fault schedule exists (the
	// "auto" victim is the first session's primary), so build the fabric
	// fault-free first and rebuild with the injector.
	probe, err := cluster.New(cluster.Config{Seed: seed}, servers)
	if err != nil {
		return err
	}
	victim := o.crashNode
	if victim == -2 {
		victim = probe.Route("session-0")[0]
	}
	var specs []faults.Spec
	if victim >= 0 {
		specs = append(specs, faults.Crash(victim, vclock.Seconds(o.crashAtMS)/1e3, vclock.Seconds(o.crashForMS)/1e3))
	}
	if o.lossProb > 0 {
		specs = append(specs, faults.MessageLosses(-1, o.lossProb))
	}
	var in *faults.Injector
	if len(specs) > 0 {
		in = faults.New(seed+17, specs...)
	}
	c, err := cluster.New(cluster.Config{
		Seed:       seed,
		HedgeAfter: vclock.Seconds(o.hedgeMS) / 1e3,
		Injector:   in,
		Registry:   reg,
	}, servers)
	if err != nil {
		return err
	}

	base := serve.OpenLoop(serve.LoadSpec{
		Requests: o.requests,
		QPS:      o.qps,
		Burst:    o.qps <= 0,
		Seed:     seed + 3,
		Inputs:   inputsFor,
	})
	reqs := make([]cluster.Request, len(base))
	for i, r := range base {
		reqs[i] = cluster.Request{
			ID:       r.ID,
			Session:  fmt.Sprintf("session-%d", i%o.sessions),
			Priority: 1,
			Arrival:  r.Arrival,
			Inputs:   r.Inputs,
		}
	}

	m := c.ShardMap()
	pattern := "burst"
	if o.qps > 0 {
		pattern = fmt.Sprintf("poisson @ %.0f req/s", o.qps)
	}
	schedule := "fault-free"
	if in != nil {
		schedule = ""
		if victim >= 0 {
			schedule = fmt.Sprintf("crash n%d@%.1fms", victim, o.crashAtMS)
			if o.crashForMS > 0 {
				schedule += fmt.Sprintf(" for %.1fms", o.crashForMS)
			}
		}
		if o.lossProb > 0 {
			if schedule != "" {
				schedule += " + "
			}
			schedule += fmt.Sprintf("%.0f%% loss", o.lossProb*100)
		}
	}
	fmt.Printf("\ncluster: %d nodes, replication %d, %d sessions, %d requests (%s), %s\n",
		o.nodes, m.Replication, o.sessions, o.requests, pattern, schedule)

	rep, _, err := c.Run(reqs)
	if err != nil {
		return err
	}
	fmt.Printf("  %s\n", rep)
	if o.trace {
		fmt.Println("\nevent trace (replayable):")
		for _, line := range rep.Trace {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}
