// Command duet-vet is the repo's custom vet suite: the six DUET analyzers
// (vclockpurity, arenainto, obsnames, lockorder, chanleak, sharednoescape)
// behind the `go vet -vettool` protocol, plus a standalone directory mode.
//
// As a vettool:
//
//	go vet -vettool=$(pwd)/bin/duet-vet ./...
//
// go invokes the tool once per package with a JSON config file; diagnostics
// go to stderr in file:line:col form and a nonzero exit marks the package
// failed. Standalone:
//
//	duet-vet ./...        # or: duet-vet <dir>...
//
// walks the directories recursively and analyzes every non-test Go file.
// With -summary, standalone mode appends one machine-grep-friendly line:
// the analyzer count, the diagnostic count, and the build-time verify pass
// roster that every core.Build runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"duet/internal/analysis"
	"duet/internal/verify"
)

// version is what `go vet` reads via -V=full to key its action cache; any
// value with ≥3 fields and a non-devel third field satisfies the protocol.
const version = "duet-vet version 1.0.0"

// vetConfig is the subset of the JSON config `go vet` hands a vettool that
// the DUET analyzers need. The full config carries type-checking context
// (ImportMap, PackageFile, ...) which syntactic analyzers can ignore.
type vetConfig struct {
	ID         string
	ImportPath string
	GoFiles    []string
	VetxOutput string
	// SucceedOnTypecheckFailure asks the tool to exit 0 without analyzing
	// (set when go already knows the package does not compile).
	SucceedOnTypecheckFailure bool
}

func main() {
	vFlag := flag.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flag JSON and exit (go vet protocol)")
	summaryFlag := flag.Bool("summary", false, "after a standalone run, print a one-line pass summary")
	flag.Parse()

	switch {
	case *vFlag != "":
		fmt.Println(version)
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVettool(args[0]))
	}
	os.Exit(runStandalone(args, *summaryFlag))
}

// runVettool handles one `go vet` package invocation: parse the config,
// analyze the package's files, write the (empty) facts file go insists on,
// and exit nonzero when there are findings.
func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duet-vet: reading config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "duet-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// go must always find the facts output, even for skipped packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "duet-vet: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	// go vet also runs the tool over dependencies for facts; the DUET
	// conventions only bind this module's code.
	if cfg.ImportPath != "duet" && !strings.HasPrefix(cfg.ImportPath, "duet/") {
		return 0
	}
	diags, err := analysis.RunFiles(analysis.DUET(), cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duet-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// runStandalone analyzes directories recursively (./... style arguments are
// treated as their root directory).
func runStandalone(args []string, summary bool) int {
	if len(args) == 0 {
		args = []string{"."}
	}
	suite := analysis.DUET()
	total := 0
	for _, arg := range args {
		root := strings.TrimSuffix(arg, "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
		diags, err := analysis.RunDir(suite, root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-vet: %s: %v\n", arg, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		total += len(diags)
	}
	if summary {
		names := make([]string, len(suite))
		for i, a := range suite {
			names[i] = a.Name
		}
		fmt.Printf("duet-vet: %d analyzers (%s), %d diagnostic(s); build-time verify passes: %s\n",
			len(suite), strings.Join(names, ","), total, strings.Join(verify.Passes(), ","))
	}
	if total > 0 {
		return 2
	}
	return 0
}
