package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles duet-vet into a temp dir and returns the binary path.
// Building through the real toolchain (not calling run* directly) is the
// point: the test exercises the exact -V/-flags/config handshake `go vet`
// speaks, so a protocol change in a Go release fails here instead of
// silently skipping every package.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "duet-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building duet-vet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module named `duet` (the vettool skips
// every other module path) with one internal/cluster package — a path
// vclockpurity governs without any vclock import.
func writeModule(t *testing.T, clusterSrc string) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod":                      "module duet\n\ngo 1.22\n",
		"internal/cluster/cluster.go": clusterSrc,
	}
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func goVet(t *testing.T, dir, tool string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	// The throwaway module must not pick up this repo's GOFLAGS/vendor
	// assumptions; everything else inherits so the toolchain caches work.
	cmd.Env = append(os.Environ(), "GOFLAGS=")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

// TestVettoolProtocol runs the real `go vet -vettool` path end to end: a
// governed package with a wall-clock read and a sleep must fail the vet
// with both diagnostics; the cleaned package must pass.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and shells out to go vet")
	}
	tool := buildTool(t)

	t.Run("dirty package fails with diagnostics", func(t *testing.T) {
		dir := writeModule(t, `package cluster

import "time"

func Bad() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
`)
		out, err := goVet(t, dir, tool)
		if err == nil {
			t.Fatalf("go vet must fail on the governed package; output:\n%s", out)
		}
		for _, want := range []string{
			"time.Sleep in a virtual-clock-governed file",
			"time.Now in a virtual-clock-governed file",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("vet output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("clean package passes", func(t *testing.T) {
		dir := writeModule(t, `package cluster

func Fine() int { return 42 }
`)
		out, err := goVet(t, dir, tool)
		if err != nil {
			t.Fatalf("go vet must pass on a clean package: %v\n%s", err, out)
		}
	})
}

// TestVettoolVersionHandshake checks the -V=full response go vet keys its
// action cache on: at least three fields with a non-devel final field.
func TestVettoolVersionHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	tool := buildTool(t)
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) < 3 || strings.Contains(fields[len(fields)-1], "devel") {
		t.Fatalf("-V=full response %q does not satisfy the go vet handshake", out)
	}
}

// TestStandaloneSummary checks the -summary line make check prints: analyzer
// roster, diagnostic count, and the verify pass roster.
func TestStandaloneSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool")
	}
	tool := buildTool(t)
	dir := writeModule(t, `package cluster

func Fine() int { return 42 }
`)
	out, err := exec.Command(tool, "-summary", dir).Output()
	if err != nil {
		t.Fatalf("summary run failed: %v\n%s", err, out)
	}
	line := strings.TrimSpace(string(out))
	for _, want := range []string{
		"6 analyzers",
		"lockorder", "chanleak", "sharednoescape",
		"0 diagnostic(s)",
		"hb-race",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("summary %q missing %q", line, want)
		}
	}
}
