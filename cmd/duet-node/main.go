// Command duet-node is one serving node of the cluster fabric as a real
// process: an internal/serve.Server behind an HTTP front door. The cluster
// package simulates many such nodes deterministically in one process;
// duet-node is the deployable shape of a single one — POST tensors in, get
// tensors back, with the same admission control, micro-batching, and typed
// shed reasons the simulated fabric exercises.
//
// Endpoints:
//
//	POST /v1/infer   JSON inference ({"inputs": {name: {shape, data}}})
//	GET  /healthz    liveness plus the node's service-time floor
//	GET  /metrics    Prometheus text exposition of duet_* and serve_* series
//
// Usage:
//
//	duet-node -model widedeep -small -addr :8080
//	duet-node -model resnet18 -small -batch 8 -window-ms 2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"duet/internal/core"
	"duet/internal/graph"
	"duet/internal/models"
	"duet/internal/obs"
	"duet/internal/serve"
	"duet/internal/tensor"
	"duet/internal/vclock"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		model      = flag.String("model", "widedeep", "widedeep | siamese | mtdnn | resnet18/34/50/101")
		seed       = flag.Int64("seed", 42, "model/profiling seed")
		small      = flag.Bool("small", false, "use a reduced model (fast startup and per-request math)")
		replicas   = flag.Int("replicas", 1, "engine replica count")
		batch      = flag.Int("batch", 1, "micro-batch row cap (1 disables coalescing)")
		windowMS   = flag.Float64("window-ms", 2, "micro-batch accumulation window in virtual ms")
		queueCap   = flag.Int("queue-cap", 256, "admission queue bound in rows")
		deadlineMS = flag.Float64("deadline-ms", 0, "default per-request SLA in virtual ms (0 = none; enables admission control)")
	)
	flag.Parse()

	node, err := newNodeServer(*model, *seed, *small, *replicas, *batch, *windowMS/1e3, *queueCap, *deadlineMS/1e3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "duet-node:", err)
		os.Exit(1)
	}
	defer node.srv.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", node.handleInfer)
	mux.HandleFunc("/healthz", node.handleHealthz)
	mux.HandleFunc("/metrics", node.handleMetrics)

	hs := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("duet-node: serving %s on %s (min service %.3f virtual ms)\n",
		node.model, *addr, float64(node.srv.MinService())*1e3)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "duet-node:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Println("duet-node: draining")
	if err := hs.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "duet-node: shutdown:", err)
		os.Exit(1)
	}
}

// nodeServer owns the serve.Server and its registry. serve.Server.Run is a
// single-threaded virtual-time event loop, so the HTTP layer serialises
// calls with a mutex: each request runs as its own one-request stream on a
// fresh virtual timeline (micro-batching across HTTP requests would need
// the cluster fabric's shared clock, which real wall-clock arrivals don't
// have).
type nodeServer struct {
	model    string
	deadline vclock.Seconds
	reg      *obs.Registry

	mu     sync.Mutex
	srv    *serve.Server
	nextID int
}

func newNodeServer(model string, seed int64, small bool, replicas, batch int, window vclock.Seconds, queueCap int, deadline vclock.Seconds) (*nodeServer, error) {
	g, batchGraph, err := buildModel(model, seed, small)
	if err != nil {
		return nil, err
	}
	engine, err := core.Build(g, core.DefaultConfig(seed))
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	if batch > 1 && batchGraph == nil {
		return nil, fmt.Errorf("model %q has no batch-resizing builder; use -batch 1", model)
	}
	srv, err := serve.New(serve.Config{
		Engine:     engine,
		BatchGraph: batchGraph,
		Replicas:   replicas,
		QueueCap:   queueCap,
		MaxBatch:   batch,
		Window:     window,
		Pipelined:  true,
		Admission:  deadline > 0,
		Seed:       seed,
		Registry:   reg,
	})
	if err != nil {
		return nil, err
	}
	return &nodeServer{model: g.Name, deadline: deadline, reg: reg, srv: srv}, nil
}

// jsonTensor is the wire form of a tensor: row-major data under an explicit
// shape.
type jsonTensor struct {
	Shape []int     `json:"shape"`
	Data  []float32 `json:"data"`
}

type inferRequest struct {
	// DeadlineMS overrides the node's default SLA for this request (virtual
	// milliseconds from arrival; 0 keeps the default).
	DeadlineMS float64               `json:"deadline_ms,omitempty"`
	Inputs     map[string]jsonTensor `json:"inputs"`
}

type inferResponse struct {
	ID        int          `json:"id"`
	Outcome   string       `json:"outcome"`
	Reason    string       `json:"reason,omitempty"`
	Error     string       `json:"error,omitempty"`
	LatencyMS float64      `json:"latency_virtual_ms"`
	BatchRows int          `json:"batch_rows"`
	Outputs   []jsonTensor `json:"outputs,omitempty"`
}

func (n *nodeServer) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var in inferRequest
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(in.Inputs) == 0 {
		http.Error(w, "bad request: no inputs", http.StatusBadRequest)
		return
	}
	inputs := make(map[string]*tensor.Tensor, len(in.Inputs))
	for name, jt := range in.Inputs {
		if len(jt.Shape) == 0 || len(jt.Data) != tensor.Numel(jt.Shape) {
			http.Error(w, fmt.Sprintf("bad request: input %q: data length %d does not match shape %v", name, len(jt.Data), jt.Shape), http.StatusBadRequest)
			return
		}
		inputs[name] = tensor.FromSlice(jt.Data, jt.Shape...)
	}
	deadline := n.deadline
	if in.DeadlineMS > 0 {
		deadline = vclock.Seconds(in.DeadlineMS) / 1e3
	}

	n.mu.Lock()
	id := n.nextID
	n.nextID++
	req := serve.Request{ID: id, Deadline: deadline, Inputs: inputs}
	_, resps, err := n.srv.Run([]serve.Request{req})
	n.mu.Unlock()
	if err != nil {
		http.Error(w, "serve: "+err.Error(), http.StatusInternalServerError)
		return
	}
	resp := resps[0]

	out := inferResponse{
		ID:        resp.ID,
		Outcome:   string(resp.Outcome),
		Reason:    string(resp.Reason),
		LatencyMS: float64(resp.Latency) * 1e3,
		BatchRows: resp.BatchRows,
	}
	if resp.Err != nil {
		out.Error = resp.Err.Error()
	}
	status := http.StatusOK
	switch resp.Outcome {
	case serve.OK:
		for _, t := range resp.Outputs {
			out.Outputs = append(out.Outputs, jsonTensor{Shape: t.Shape(), Data: t.Data()})
		}
	case serve.Rejected:
		status = http.StatusTooManyRequests
		if resp.Reason == serve.ShedInvalid {
			status = http.StatusBadRequest
		}
	default: // Expired, Failed
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(out)
}

func (n *nodeServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]interface{}{
		"status":         "ok",
		"model":          n.model,
		"min_service_ms": float64(n.srv.MinService()) * 1e3,
	})
}

func (n *nodeServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := n.reg.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// buildModel returns the model graph plus its batch-resizing builder (nil
// when the model has none wired).
func buildModel(name string, seed int64, small bool) (*graph.Graph, func(int) (*graph.Graph, error), error) {
	switch {
	case name == "widedeep":
		cfg := models.DefaultWideDeep()
		if small {
			cfg.ImageSize, cfg.SeqLen, cfg.CNNDepth = 64, 16, 18
		}
		g, err := models.WideDeep(cfg)
		return g, func(b int) (*graph.Graph, error) {
			c := cfg
			c.Batch = b
			return models.WideDeep(c)
		}, err
	case name == "siamese":
		cfg := models.DefaultSiamese()
		if small {
			cfg.SeqLen, cfg.Hidden = 16, 64
		}
		g, err := models.Siamese(cfg)
		return g, func(b int) (*graph.Graph, error) {
			c := cfg
			c.Batch = b
			return models.Siamese(c)
		}, err
	case name == "mtdnn":
		cfg := models.DefaultMTDNN()
		if small {
			cfg.SeqLen, cfg.Layers, cfg.ModelDim, cfg.FFNDim, cfg.Heads = 16, 2, 128, 256, 4
		}
		g, err := models.MTDNN(cfg)
		return g, func(b int) (*graph.Graph, error) {
			c := cfg
			c.Batch = b
			return models.MTDNN(c)
		}, err
	case strings.HasPrefix(name, "resnet"):
		var depth int
		if _, err := fmt.Sscanf(name, "resnet%d", &depth); err != nil {
			return nil, nil, fmt.Errorf("bad model name %q", name)
		}
		cfg := models.DefaultResNet(depth)
		if small {
			cfg.ImageSize = 64
		}
		g, err := models.ResNet(cfg)
		return g, func(b int) (*graph.Graph, error) {
			c := cfg
			c.Batch = b
			return models.ResNet(c)
		}, err
	default:
		return nil, nil, fmt.Errorf("unknown model %q (duet-node serves widedeep, siamese, mtdnn, resnet*)", name)
	}
}
