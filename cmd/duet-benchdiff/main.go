// Command duet-benchdiff compares fresh benchmark runs against the
// committed BENCH_*.json baselines with benchstat-style statistics, and
// renders the baselines' run histories into a static trend dashboard.
//
// Usage:
//
//	duet-benchdiff                        # re-run every suite (quick), diff vs baselines
//	duet-benchdiff -suite serve,cluster   # only those suites
//	duet-benchdiff -runs 5 -seed 100      # 5 fresh runs, seeds 100..104
//	duet-benchdiff -quick=false           # paper-scale fresh runs (slow)
//	duet-benchdiff -json diff.json        # also write the machine-readable result
//	duet-benchdiff -dashboard             # write docs/bench/{index.html,trends.json} and exit
//
// Each fresh run varies the seed (base seed + run index) so the sample set
// reflects seed sensitivity, then per-metric sample sets are compared with
// a Mann–Whitney U test, order-statistic median confidence intervals, and
// the per-suite direction schema. Exits 1 if any gated metric regresses,
// 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"duet/internal/benchdiff"
)

func main() {
	def := benchdiff.DefaultConfig()
	var (
		suiteList = flag.String("suite", "", "comma-separated suites to diff (default: all; see -list)")
		list      = flag.Bool("list", false, "list suites and their gated metric rules")
		dir       = flag.String("baseline-dir", ".", "directory holding the committed BENCH_*.json baselines")
		runs      = flag.Int("runs", def.Runs, "fresh seed-varied runs per suite")
		seed      = flag.Int64("seed", def.Seed, "base seed for fresh runs (run i uses seed+i)")
		quick     = flag.Bool("quick", def.Quick, "run suites at quick scale (matches the committed quick baselines)")
		threshold = flag.Float64("threshold", def.Threshold, "default relative regression threshold for gated metrics")
		alpha     = flag.Float64("alpha", def.Alpha, "significance level for the Mann-Whitney U test")
		jsonPath  = flag.String("json", "", "write the machine-readable diff result to this file")
		dashboard = flag.Bool("dashboard", false, "render the trend dashboard from committed baselines and exit")
		dashOut   = flag.String("dashboard-out", "docs/bench", "output directory for -dashboard")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "duet-benchdiff: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	suites := benchdiff.Suites()
	if *suiteList != "" {
		suites = suites[:0]
		for _, name := range strings.Split(*suiteList, ",") {
			s, ok := benchdiff.SuiteByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "duet-benchdiff: unknown suite %q (use -list)\n", name)
				os.Exit(2)
			}
			suites = append(suites, s)
		}
	}

	if *list {
		for _, s := range benchdiff.Suites() {
			fmt.Printf("%-8s %s\n", s.Name, s.File)
			for _, r := range s.Rules {
				gate := "trend"
				if r.Gate {
					gate = "gate"
				}
				thr := ""
				switch {
				case r.Gate && r.Threshold == benchdiff.Exact:
					thr = " (exact)"
				case r.Gate && r.Threshold > 0:
					thr = fmt.Sprintf(" (%.0f%%)", r.Threshold*100)
				case r.Gate:
					thr = fmt.Sprintf(" (%.0f%%)", *threshold*100)
				}
				fmt.Printf("  %-38s %s is better, %s%s\n", r.Prefix, r.Better, gate, thr)
			}
		}
		return
	}

	if *dashboard {
		if err := benchdiff.WriteDashboard(suites, *dir, *dashOut, time.Now().Unix()); err != nil {
			fmt.Fprintf(os.Stderr, "duet-benchdiff: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s/index.html and %s/trends.json\n", *dashOut, *dashOut)
		return
	}

	cfg := benchdiff.Config{
		Quick:     *quick,
		Seed:      *seed,
		Runs:      *runs,
		Threshold: *threshold,
		Alpha:     *alpha,
	}
	if cfg.Runs < 1 {
		fmt.Fprintln(os.Stderr, "duet-benchdiff: -runs must be >= 1")
		os.Exit(2)
	}

	res, err := benchdiff.Diff(suites, *dir, cfg, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "duet-benchdiff: %v\n", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "duet-benchdiff: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "duet-benchdiff: %v\n", err)
			os.Exit(1)
		}
	}
	if res.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "duet-benchdiff: %d gated regression(s)\n", res.Regressions)
		os.Exit(1)
	}
	fmt.Println("no gated regressions")
}
